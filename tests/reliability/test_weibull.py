"""Unit + property tests for Weibull primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.reliability import weibull


def test_exponential_special_case():
    # shape 1: hazard constant = 1/scale.
    t = np.array([1.0, 10.0, 100.0])
    assert np.allclose(weibull.hazard(t, 1.0, 50.0), 1.0 / 50.0)


def test_survival_cdf_complementary():
    t = np.linspace(0.1, 100, 20)
    s = weibull.survival(t, 2.0, 30.0)
    f = weibull.cdf(t, 2.0, 30.0)
    assert np.allclose(s + f, 1.0)


def test_hazard_monotonicity_by_shape():
    t = np.linspace(1.0, 100.0, 50)
    increasing = weibull.hazard(t, 3.0, 50.0)
    decreasing = weibull.hazard(t, 0.5, 50.0)
    assert np.all(np.diff(increasing) > 0)
    assert np.all(np.diff(decreasing) < 0)


def test_mean_matches_gamma_formula():
    # shape 1 -> mean == scale
    assert weibull.mean(1.0, 42.0) == pytest.approx(42.0)
    # shape 2 -> scale * gamma(1.5) = scale * sqrt(pi)/2
    assert weibull.mean(2.0, 10.0) == pytest.approx(10.0 * np.sqrt(np.pi) / 2)


def test_sampling_distribution_roughly_correct():
    rng = np.random.default_rng(0)
    samples = weibull.sample(rng, 2.0, 100.0, 20_000)
    assert samples.min() > 0
    assert np.mean(samples) == pytest.approx(weibull.mean(2.0, 100.0), rel=0.05)


def test_fit_scale_for_rate_inverse():
    scale = weibull.fit_scale_for_rate(3.0, target_rate=1e-4, at_time=1000.0)
    assert float(weibull.hazard(1000.0, 3.0, scale)) == pytest.approx(1e-4)


def test_validation():
    with pytest.raises(ConfigurationError):
        weibull.hazard(1.0, 0.0, 1.0)
    with pytest.raises(ConfigurationError):
        weibull.hazard(1.0, 1.0, 0.0)
    with pytest.raises(ConfigurationError):
        weibull.fit_scale_for_rate(1.0, 0.0, 1.0)
    with pytest.raises(ConfigurationError):
        weibull.fit_scale_for_rate(1.0, 1.0, -1.0)


@given(
    st.floats(min_value=0.3, max_value=5.0),
    st.floats(min_value=1.0, max_value=1e5),
    st.floats(min_value=0.0, max_value=1e6),
)
def test_property_survival_in_unit_interval_and_decreasing(shape, scale, t):
    s1 = float(weibull.survival(t, shape, scale))
    s2 = float(weibull.survival(t + 1.0, shape, scale))
    assert 0.0 <= s2 <= s1 <= 1.0


@given(
    st.floats(min_value=0.3, max_value=5.0),
    st.floats(min_value=1.0, max_value=1e5),
    st.floats(min_value=1e-6, max_value=1e6),
)
def test_property_pdf_is_hazard_times_survival(shape, scale, t):
    pdf = float(weibull.pdf(t, shape, scale))
    expected = float(
        weibull.hazard(t, shape, scale) * weibull.survival(t, shape, scale)
    )
    assert pdf == pytest.approx(expected, rel=1e-9, abs=1e-300)
