"""Unit tests for the bathtub model (Fig. 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reliability.bathtub import BathtubModel
from repro.units import HOURS_PER_YEAR


@pytest.fixture
def model():
    return BathtubModel()


def test_three_phases_in_order(model):
    assert model.phase_of(10.0) == "infant"
    assert model.phase_of(5 * HOURS_PER_YEAR) == "useful"
    assert model.phase_of(25 * HOURS_PER_YEAR) == "wearout"


def test_hazard_is_sum_of_components(model):
    t = 1000.0
    total = float(model.hazard(t))
    parts = (
        float(model.infant_hazard(t))
        + float(model.useful_hazard(t))
        + float(model.wearout_hazard(t))
    )
    assert total == pytest.approx(parts)


def test_bathtub_shape(model):
    """Hazard falls from the start, flattens, then rises again."""
    t, h = model.curve(30 * HOURS_PER_YEAR, points=300)
    i_min = int(np.argmin(h))
    assert h[0] > h[i_min]
    assert h[-1] > h[i_min]
    assert 0 < i_min < len(h) - 1


def test_useful_life_rate_calibrated_to_pauli_meyna(model):
    # At 5 years the hazard is within 2x of the 50/1M/yr field statistic.
    per_year = float(model.hazard(5 * HOURS_PER_YEAR)) * HOURS_PER_YEAR
    assert 25e-6 < per_year < 100e-6


def test_no_weak_fraction_no_infant_hazard():
    model = BathtubModel(weak_fraction=0.0)
    assert float(model.infant_hazard(10.0)) == 0.0


def test_sample_failure_ages(model):
    rng = np.random.default_rng(1)
    ages = model.sample_failure_age_hours(rng, 5000)
    assert ages.shape == (5000,)
    assert np.all(ages > 0)
    # Wearout dominates the median (around the wearout scale).
    assert 5 * HOURS_PER_YEAR < np.median(ages) < 80 * HOURS_PER_YEAR
    # The weak subpopulation produces early failures.
    assert (ages < 1000.0).mean() > 0.003


def test_curve_validation(model):
    with pytest.raises(ConfigurationError):
        model.curve(0.0)
    with pytest.raises(ConfigurationError):
        model.curve(100.0, points=1)


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        BathtubModel(weak_fraction=1.5)
    with pytest.raises(ConfigurationError):
        BathtubModel(infant_shape=1.2)
    with pytest.raises(ConfigurationError):
        BathtubModel(wearout_shape=0.8)
    with pytest.raises(ConfigurationError):
        BathtubModel(useful_rate_per_h=-1.0)
