"""Unit tests for Pecht's-law projections."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reliability import pecht


def test_doubling_every_14_months():
    assert float(pecht.time_to_failure_multiplier(14.0)) == pytest.approx(2.0)
    assert float(pecht.time_to_failure_multiplier(28.0)) == pytest.approx(4.0)
    assert float(pecht.time_to_failure_multiplier(0.0)) == pytest.approx(1.0)


def test_permanent_rate_halves_per_doubling():
    assert float(pecht.permanent_fit_after(100.0, 14.0)) == pytest.approx(50.0)
    with pytest.raises(ConfigurationError):
        pecht.permanent_fit_after(-1.0, 14.0)


def test_transient_rate_grows():
    after = float(pecht.transient_fit_after(1e5, 14.0, growth_per_doubling=1.4))
    assert after == pytest.approx(1.4e5)
    with pytest.raises(ConfigurationError):
        pecht.transient_fit_after(1.0, 1.0, growth_per_doubling=0.0)


def test_ratio_widens_over_time():
    months = np.array([0.0, 14.0, 28.0])
    ratios = pecht.transient_to_permanent_ratio(months)
    assert ratios[0] == pytest.approx(1000.0)
    assert ratios[1] == pytest.approx(2800.0)
    assert np.all(np.diff(ratios) > 0)
