"""Unit tests for FIT arithmetic and Poisson sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reliability.fit import (
    expected_failures,
    exponential_arrivals_us,
    fit_from_mtbf_hours,
    observed_fit,
    thinned_arrivals_us,
)
from repro.units import hours


def test_expected_failures():
    # 100 FIT over 1e7 device-hours -> 1 expected failure.
    assert expected_failures(100.0, 1e7) == pytest.approx(1.0)
    assert expected_failures(100.0, 1e5, units=100) == pytest.approx(1.0)
    with pytest.raises(ConfigurationError):
        expected_failures(1.0, -1.0)


def test_observed_fit_roundtrip():
    assert observed_fit(1, 1e7) == pytest.approx(100.0)
    with pytest.raises(ConfigurationError):
        observed_fit(1, 0.0)


def test_fit_from_mtbf():
    assert fit_from_mtbf_hours(1e7) == pytest.approx(100.0)
    with pytest.raises(ConfigurationError):
        fit_from_mtbf_hours(0.0)


def test_exponential_arrivals_rate():
    rng = np.random.default_rng(0)
    # 1e9 FIT == 1 per hour; over 200 hours expect ~200 arrivals.
    arrivals = exponential_arrivals_us(rng, 1e9, hours(200))
    assert 150 < arrivals.size < 260
    assert np.all(np.diff(arrivals) >= 0)
    assert arrivals[-1] < hours(200)


def test_exponential_arrivals_empty_cases():
    rng = np.random.default_rng(0)
    assert exponential_arrivals_us(rng, 0.0, 1000).size == 0
    assert exponential_arrivals_us(rng, 100.0, 10, start_us=10).size == 0
    with pytest.raises(ConfigurationError):
        exponential_arrivals_us(rng, -1.0, 100)


def test_exponential_arrivals_respect_start():
    rng = np.random.default_rng(1)
    arrivals = exponential_arrivals_us(rng, 1e9, hours(100), start_us=hours(50))
    assert arrivals.size > 0
    assert arrivals[0] >= hours(50)


def test_thinned_arrivals_match_profile():
    rng = np.random.default_rng(2)

    def profile(t):
        return np.where(np.asarray(t) < hours(100), 0.0, 2e9)

    arrivals = thinned_arrivals_us(rng, profile, 2e9, hours(200))
    assert arrivals.size > 0
    assert np.all(arrivals >= hours(100) * 0.999)
    # roughly 200 arrivals in the active half (2/hour x 100h)
    assert 140 < arrivals.size < 270


def test_thinned_rejects_underestimated_max():
    rng = np.random.default_rng(3)
    with pytest.raises(ConfigurationError):
        thinned_arrivals_us(
            rng, lambda t: np.full(np.shape(t), 2e9), 1e9, hours(100)
        )


def test_thinned_zero_max_is_empty():
    rng = np.random.default_rng(4)
    assert thinned_arrivals_us(rng, lambda t: t, 0.0, 1000).size == 0
