"""Live campaign telemetry: bus, sinks, heartbeats, monitor fold.

Three contracts from the live-telemetry design are pinned here:

* **Schema + durability** — every live log starts with a versioned
  ``live_header`` line, the reader tolerates a torn tail (SIGKILL), and
  the one-shot monitor report is a *pure function of the file bytes*
  (committed golden, byte for byte).
* **Stall/straggler detection** — the parent-side monitor folds worker
  heartbeats with an injectable clock, flags stragglers once against the
  median chunk latency, and reports stalled chunks for resubmission.
* **Determinism** — enabling the bus must not perturb the simulation:
  the campaign aggregate (plan digest, obs counters, every replica
  value) is bit-identical with the bus on vs off, at workers=1 and
  workers=4.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.obs.live import (
    LIVE_EVENT_KINDS,
    LIVE_SCHEMA_VERSION,
    JsonlLiveSink,
    LiveEventBus,
    LiveRunMonitor,
    MemoryLiveSink,
    monitor_once,
    read_heartbeat,
    read_live_log,
    render_monitor_report,
    serve_metrics_once,
    stamp_heartbeat,
    summarize_live,
)
from repro.runtime.runner import ParallelCampaignRunner, ReplicaTask

DATA = Path(__file__).parent.parent / "data"
GOLDEN_LOG = DATA / "golden_live_log.jsonl"
GOLDEN_REPORT = DATA / "golden_monitor_report.txt"


class FakeClock:
    """Manually advanced clock for byte-stable bus/monitor tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


def double_task(replica: ReplicaTask) -> int:
    """Trivial module-level task (spawn-picklable)."""
    return replica.index * 2


# -- sinks and bus ------------------------------------------------------------


def test_jsonl_sink_header_first_and_parseable(tmp_path):
    path = tmp_path / "live.jsonl"
    bus = LiveEventBus([JsonlLiveSink(path)], clock=FakeClock())
    bus.emit("run_started", replicas=3)
    bus.emit("chunk_done", chunk=0, replicas=3)
    bus.close()
    records, skipped = read_live_log(path)
    assert skipped == 0
    assert [r["kind"] for r in records] == [
        "live_header",
        "run_started",
        "chunk_done",
    ]
    assert records[0]["schema"] == LIVE_SCHEMA_VERSION
    assert records[1]["replicas"] == 3
    assert all("t_wall" in r for r in records)


def test_bus_without_sinks_is_a_noop():
    bus = LiveEventBus([])
    bus.emit("run_started", replicas=1)  # must not raise
    bus.close()


def test_memory_sink_records_injected_clock_times():
    clock = FakeClock(5.0)
    sink = MemoryLiveSink()
    bus = LiveEventBus([sink], clock=clock)
    bus.emit("progress", replicas_done=1)
    clock.now = 6.5
    bus.emit("progress", replicas_done=2)
    assert [r["t_wall"] for r in sink.records] == [5.0, 5.0, 6.5]
    assert sink.records[0]["kind"] == "live_header"


def test_sink_fsync_every_record_when_configured(tmp_path):
    path = tmp_path / "live.jsonl"
    sink = JsonlLiveSink(path, fsync_every=1)
    bus = LiveEventBus([sink])
    for i in range(5):
        bus.emit("progress", replicas_done=i)
    # Durable before close: a reader sees every record already.
    records, skipped = read_live_log(path)
    assert len(records) == 6  # header + 5
    assert skipped == 0
    bus.close()


# -- worker heartbeats --------------------------------------------------------


def test_heartbeat_stamp_and_read_roundtrip(tmp_path):
    path = str(tmp_path / "hb-0.json")
    stamp_heartbeat(path, worker="pid-1", chunk=0, replicas_done=2, events=99)
    record = read_heartbeat(path)
    assert record is not None
    assert record["worker"] == "pid-1"
    assert record["chunk"] == 0
    assert record["replicas_done"] == 2
    assert record["events"] == 99
    assert record["pid"] > 0
    assert record["rss_kb"] >= 0
    # No torn tmp file left behind.
    assert list(tmp_path.iterdir()) == [tmp_path / "hb-0.json"]


def test_read_heartbeat_tolerates_missing_and_garbage(tmp_path):
    assert read_heartbeat(tmp_path / "nope.json") is None
    bad = tmp_path / "bad.json"
    bad.write_text("{torn")
    assert read_heartbeat(bad) is None
    nondict = tmp_path / "list.json"
    nondict.write_text("[1, 2]")
    assert read_heartbeat(nondict) is None


# -- reader tolerance ---------------------------------------------------------


def test_read_live_log_skips_torn_tail(tmp_path):
    path = tmp_path / "live.jsonl"
    path.write_text(
        json.dumps({"kind": "live_header", "schema": 1, "t_wall": 1.0})
        + "\n"
        + json.dumps({"kind": "run_started", "t_wall": 1.0, "replicas": 2})
        + "\n"
        + "[]\n"  # valid JSON, not a dict
        + '{"kind": "chunk_done", "t_wa'  # torn mid-record by SIGKILL
    )
    records, skipped = read_live_log(path)
    assert [r["kind"] for r in records] == ["live_header", "run_started"]
    assert skipped == 2


def test_read_live_log_missing_file_raises_oserror(tmp_path):
    with pytest.raises(OSError):
        read_live_log(tmp_path / "nope.jsonl")


# -- monitor fold: heartbeats, stragglers, stalls ----------------------------


def _monitor(tmp_path, clock, **kwargs):
    sink = MemoryLiveSink()
    bus = LiveEventBus([sink], clock=clock)
    monitor = LiveRunMonitor(
        bus, str(tmp_path), clock=clock, **kwargs
    )
    return monitor, sink


def _kinds(sink):
    return [r["kind"] for r in sink.records if r["kind"] != "live_header"]


def test_monitor_emits_heartbeat_only_on_progress(tmp_path):
    clock = FakeClock()
    monitor, sink = _monitor(tmp_path, clock, replicas_total=4)
    monitor.chunk_submitted(0, [0, 1], attempt=1)
    stamp_heartbeat(
        monitor.heartbeat_path(0),
        worker="pid-9",
        chunk=0,
        replicas_done=1,
        events=10,
    )
    clock.now += 1.0
    monitor.poll()
    monitor.poll()  # same stamp again: no duplicate heartbeat record
    beats = [r for r in sink.records if r["kind"] == "worker_heartbeat"]
    assert len(beats) == 1
    assert beats[0]["replicas_done"] == 1
    assert beats[0]["events"] == 10
    # Every poll emits a progress record regardless.
    assert _kinds(sink).count("progress") == 2


def test_monitor_flags_straggler_once_against_median(tmp_path):
    clock = FakeClock()
    monitor, sink = _monitor(
        tmp_path, clock, replicas_total=8, straggler_factor=2.0
    )
    # Three completed chunks at 1 s each establish the median.
    for cid in (0, 1, 2):
        monitor.chunk_submitted(cid, [cid], attempt=1)
        clock.now += 1.0
        monitor.chunk_done(cid, worker="pid-1", replicas=1, events=5)
    monitor.chunk_submitted(3, [3], attempt=1)
    clock.now += 1.5  # 1.5x median: under the 2x factor
    assert monitor.poll() == []
    assert "straggler_suspected" not in _kinds(sink)
    clock.now += 1.0  # now 2.5x median
    monitor.poll()
    monitor.poll()  # flagged once, not per tick
    stragglers = [
        r for r in sink.records if r["kind"] == "straggler_suspected"
    ]
    assert len(stragglers) == 1
    assert stragglers[0]["chunk"] == 3
    assert stragglers[0]["ratio"] > 2.0


def test_monitor_detects_stall_after_heartbeat_silence(tmp_path):
    clock = FakeClock()
    monitor, sink = _monitor(
        tmp_path, clock, replicas_total=4, stall_timeout_s=2.0
    )
    monitor.chunk_submitted(0, [0, 1], attempt=1)
    clock.now += 1.0
    assert monitor.poll() == []  # within deadline
    clock.now += 1.5  # 2.5 s of silence total
    assert monitor.poll() == [0]
    assert monitor.poll() == []  # suspected once, not per tick
    assert monitor.stall_count == 1
    stalls = [r for r in sink.records if r["kind"] == "stall_suspected"]
    assert len(stalls) == 1
    assert stalls[0]["chunk"] == 0
    assert stalls[0]["action"] == "resubmitted"
    assert stalls[0]["timeout_s"] == 2.0


def test_monitor_heartbeat_resets_stall_deadline(tmp_path):
    clock = FakeClock()
    monitor, _sink = _monitor(
        tmp_path, clock, replicas_total=4, stall_timeout_s=2.0
    )
    monitor.chunk_submitted(0, [0, 1], attempt=1)
    clock.now += 1.5
    stamp_heartbeat(
        monitor.heartbeat_path(0),
        worker="pid-9",
        chunk=0,
        replicas_done=1,
        events=1,
    )
    assert monitor.poll() == []  # heartbeat refreshed the deadline
    clock.now += 1.5
    assert monitor.poll() == []  # only 1.5 s since last activity
    clock.now += 1.0
    assert monitor.poll() == [0]  # 2.5 s of silence now


def test_monitor_stall_detection_disabled_with_none(tmp_path):
    clock = FakeClock()
    monitor, sink = _monitor(
        tmp_path, clock, replicas_total=2, stall_timeout_s=None
    )
    monitor.chunk_submitted(0, [0], attempt=1)
    clock.now += 1e6
    assert monitor.poll() == []
    assert "stall_suspected" not in _kinds(sink)


def test_monitor_progress_throughput_and_eta(tmp_path):
    clock = FakeClock()
    monitor, sink = _monitor(tmp_path, clock, replicas_total=4)
    monitor.chunk_submitted(0, [0, 1], attempt=1)
    clock.now += 2.0
    monitor.chunk_done(0, worker="pid-1", replicas=2, events=10)
    monitor.poll()
    progress = [r for r in sink.records if r["kind"] == "progress"][-1]
    assert progress["replicas_done"] == 2
    assert progress["replicas_total"] == 4
    assert progress["throughput_rps"] == pytest.approx(1.0)
    assert progress["eta_s"] == pytest.approx(2.0)


# -- summarize + golden report ------------------------------------------------


def test_summarize_live_golden_fixture():
    records, skipped = read_live_log(GOLDEN_LOG)
    summary = summarize_live(records, skipped_lines=skipped)
    assert summary["schema"] == LIVE_SCHEMA_VERSION
    assert summary["command"] == "mc"
    assert summary["backend"] == "scalar"
    assert summary["workers_requested"] == 2
    assert summary["replicas_total"] == 8
    assert summary["replicas_resumed"] == 2
    assert summary["replicas_done"] == 6
    assert summary["progress"] == 1.0
    assert summary["chunks_done"] == 3
    assert summary["chunks_in_flight"] == []
    assert summary["events_simulated"] == 1490
    assert summary["elapsed_s"] == 4.5
    assert summary["retries"] == 1
    assert summary["stalls"] == 1
    assert summary["stragglers"] == 1
    assert summary["checkpoint_flushes"] == 2
    assert summary["finished"] is True
    assert summary["failures"] == [
        {"index": 6, "error_type": "ValueError", "attempts": 1}
    ]
    assert summary["skipped_lines"] == 1
    assert summary["run_metrics"]["schema"] == 1
    assert set(summary["workers"]) == {"pid-101", "pid-102"}
    assert summary["workers"]["pid-101"]["rss_kb"] == 51200


def test_monitor_report_matches_committed_golden_bytes():
    """The one-shot report is a pure function of the log bytes."""
    _summary, report = monitor_once(GOLDEN_LOG)
    assert report == GOLDEN_REPORT.read_text(encoding="utf-8")


def test_render_report_without_header_says_total_unknown():
    report = render_monitor_report(
        summarize_live([{"kind": "chunk_done", "replicas": 2, "t_wall": 1.0}]),
        "x.jsonl",
    )
    assert "total unknown" in report


# -- runner integration -------------------------------------------------------


def test_runner_serial_live_log_end_to_end(tmp_path):
    path = tmp_path / "live.jsonl"
    outcome = ParallelCampaignRunner(double_task, chunk_size=2).run(
        [None] * 5, root_seed=3, live_log=path
    )
    assert outcome.value == (0, 2, 4, 6, 8)
    records, skipped = read_live_log(path)
    assert skipped == 0
    kinds = {r["kind"] for r in records}
    assert kinds <= set(LIVE_EVENT_KINDS)
    assert {"live_header", "run_started", "chunk_submitted", "chunk_done",
            "progress", "run_finished"} <= kinds
    summary = summarize_live(records)
    assert summary["finished"] is True
    assert summary["replicas_done"] == 5
    assert summary["workers"] == {
        "serial": {"replicas": 5, "events": 0, "chunks": 3}
    }
    assert summary["run_metrics"]["replicas"] == 5
    # The OpenMetrics snapshot rides along.
    prom = tmp_path / "live.jsonl.prom"
    text = prom.read_text(encoding="utf-8")
    assert text.endswith("# EOF\n")
    assert "repro_run_replicas 5" in text


def test_runner_pool_live_log_reports_pool_workers(tmp_path):
    path = tmp_path / "live.jsonl"
    outcome = ParallelCampaignRunner(
        double_task, workers=2, chunk_size=1, retry_backoff_s=0.0
    ).run([None] * 4, root_seed=3, live_log=path)
    assert outcome.value == (0, 2, 4, 6)
    summary, report = monitor_once(path)
    assert summary["finished"] is True
    assert summary["replicas_done"] == 4
    assert summary["chunks_done"] == 4
    assert all(w.startswith("pid-") for w in summary["workers"])
    assert "Per-worker throughput" in report
    # No heartbeat temp directories leaked.
    import glob
    import tempfile

    leftovers = glob.glob(
        str(Path(tempfile.gettempdir()) / "repro-live-hb-*" / "hb-*.json")
    )
    assert not leftovers


def test_runner_checkpoint_flushes_reach_the_live_log(tmp_path):
    path = tmp_path / "live.jsonl"
    ParallelCampaignRunner(double_task, chunk_size=2).run(
        [None] * 4,
        root_seed=1,
        checkpoint=tmp_path / "ledger.jsonl",
        live_log=path,
    )
    records, _ = read_live_log(path)
    flushes = [r for r in records if r["kind"] == "checkpoint_flushed"]
    assert len(flushes) == 2
    assert all(f["replicas"] == 2 for f in flushes)


def test_runner_explicit_bus_is_not_closed_by_the_runner(tmp_path):
    sink = MemoryLiveSink()
    bus = LiveEventBus([sink])
    ParallelCampaignRunner(double_task).run([None] * 2, root_seed=0, live=bus)
    kinds = [r["kind"] for r in sink.records]
    assert kinds[0] == "live_header"
    assert kinds[-1] == "run_finished"
    bus.emit("progress", replicas_done=0)  # caller still owns the bus
    assert sink.records[-1]["kind"] == "progress"


# -- determinism: bus on == bus off ------------------------------------------


@pytest.mark.parametrize("workers", [1, 4])
def test_live_bus_does_not_perturb_campaign_digests(tmp_path, workers):
    """Goldens-subset replay: obs counters and the plan digest are
    bit-identical with the live bus on vs off."""
    from repro.faults.campaign import CampaignReplicaSpec
    from repro.runtime.workloads import run_random_campaigns
    from repro.units import ms

    spec = CampaignReplicaSpec(
        expected_faults=3.0,
        horizon_us=ms(400),
        obs_enabled=True,
        obs_trace=True,
    )
    off = run_random_campaigns(6, root_seed=11, spec=spec, workers=workers)
    on = run_random_campaigns(
        6,
        root_seed=11,
        spec=spec,
        workers=workers,
        live_log=str(tmp_path / f"live-{workers}.jsonl"),
    )
    assert on.value == off.value  # plan digest, counters, every replica
    assert on.value.obs_counters == off.value.obs_counters
    assert on.value.plan_digest == off.value.plan_digest
    # And the live log itself is a valid telemetry stream.
    summary = summarize_live(
        read_live_log(tmp_path / f"live-{workers}.jsonl")[0]
    )
    assert summary["finished"] is True
    assert summary["replicas_done"] == 6
    assert summary["events_simulated"] == off.value.events_simulated


# -- one-shot exposition server ----------------------------------------------


def _scrape(port: int) -> tuple[str, str]:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=10
    ) as resp:
        return resp.read().decode("utf-8"), resp.headers["Content-Type"]


def test_serve_metrics_once_prefers_prom_sidecar(tmp_path):
    live = tmp_path / "live.jsonl"
    ParallelCampaignRunner(double_task).run(
        [None] * 3, root_seed=0, live_log=live
    )
    expected = (tmp_path / "live.jsonl.prom").read_text(encoding="utf-8")
    started = threading.Event()
    ports: list[int] = []
    started.port = 0  # serve_metrics_once stashes the bound port here

    def _serve():
        ports.append(serve_metrics_once(live, port=0, started=started))

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    assert started.wait(timeout=10)
    body, content_type = _scrape(started.port)
    thread.join(timeout=10)
    assert body == expected
    assert "openmetrics-text" in content_type
    assert ports == [started.port]


def test_serve_metrics_once_renders_degraded_from_live_log(tmp_path):
    """Without a .prom sidecar (run killed mid-flight) the server derives
    gauges from the live log alone."""
    live = tmp_path / "live.jsonl"
    bus = LiveEventBus([JsonlLiveSink(live)], clock=FakeClock())
    bus.emit("run_started", replicas=9, replicas_resumed=0)
    bus.emit("chunk_done", chunk=0, worker="pid-1", replicas=3, events=30)
    bus.close()
    started = threading.Event()
    started.port = 0
    thread = threading.Thread(
        target=serve_metrics_once,
        args=(live,),
        kwargs={"port": 0, "started": started},
        daemon=True,
    )
    thread.start()
    assert started.wait(timeout=10)
    body, _ = _scrape(started.port)
    thread.join(timeout=10)
    assert "repro_run_replicas 9" in body
    assert "repro_run_replicas_done 3" in body
    assert body.endswith("# EOF\n")
