"""OpenMetrics exposition of counter snapshots and run metrics.

Pins the naming conventions documented in ``docs/observability.md``:
``repro_`` prefix, ``_total`` counters, cumulative power-of-two
``_bucket{le=...}`` series with ``+Inf``, run-metrics gauges, and the
mandatory ``# EOF`` terminator.
"""

from __future__ import annotations

from repro.obs.counters import CounterRegistry
from repro.obs.openmetrics import render_openmetrics
from repro.runtime.metrics import RunMetrics


def test_counters_become_total_series_with_sanitized_names():
    reg = CounterRegistry()
    reg.inc("sim.events", 42)
    reg.inc("ona.triggers", ona="wearout", cls="component-internal")
    text = render_openmetrics(reg.snapshot())
    assert "# TYPE repro_sim_events counter" in text
    assert "repro_sim_events_total 42" in text
    assert (
        'repro_ona_triggers_total{cls="component-internal",ona="wearout"} 1'
        in text
    )
    assert text.endswith("# EOF\n")


def test_histogram_buckets_are_cumulative_power_of_two_edges():
    reg = CounterRegistry()
    for value in (0.5, 1, 3, 3, 8):
        reg.observe("latency.us", value, stage="detection")
    text = render_openmetrics(reg.snapshot())
    lines = text.splitlines()
    assert "# TYPE repro_latency_us histogram" in lines
    # bucket 0 = [0,1) holds 1; bucket 1 = [1,2) adds 1; bucket 2 = [2,4)
    # adds the two 3s; bucket 4 = [8,16) adds the 8.  Cumulative:
    assert 'repro_latency_us_bucket{le="1",stage="detection"} 1' in lines
    assert 'repro_latency_us_bucket{le="2",stage="detection"} 2' in lines
    assert 'repro_latency_us_bucket{le="4",stage="detection"} 4' in lines
    assert 'repro_latency_us_bucket{le="16",stage="detection"} 5' in lines
    assert 'repro_latency_us_bucket{le="+Inf",stage="detection"} 5' in lines
    assert 'repro_latency_us_sum{stage="detection"} 15.5' in lines
    assert 'repro_latency_us_count{stage="detection"} 5' in lines


def test_run_metrics_become_gauges_with_help_and_info():
    metrics = RunMetrics.from_results(
        replicas=6,
        workers=2,
        chunk_size=3,
        wall_time_s=2.0,
        retries=1,
        events=[100, 100],
        busy_by_worker={"pid-1": 1.0},
        replicas_resumed=2,
        backend="batched",
    )
    text = render_openmetrics(run_metrics=metrics.to_dict())
    assert "# TYPE repro_run_replicas gauge" in text
    assert "repro_run_replicas 6" in text
    assert "repro_run_events_simulated 200" in text
    assert "repro_run_events_per_second 100" in text
    assert "repro_run_replicas_resumed 2" in text
    assert "repro_run_retries 1" in text
    assert "# HELP repro_run_wall_time_s" in text
    assert 'repro_run_info{backend="batched",schema="1"} 1' in text


def test_empty_inputs_still_terminate_with_eof():
    assert render_openmetrics() == "# EOF\n"


def test_label_values_are_escaped():
    reg = CounterRegistry()
    reg.inc("x", path='a"b\\c')
    text = render_openmetrics(reg.snapshot())
    assert 'repro_x_total{path="a\\"b\\\\c"} 1' in text


def test_live_summary_degraded_path_emits_progress_gauges():
    from repro.obs.live import summarize_live

    summary = summarize_live(
        [
            {"kind": "live_header", "schema": 1, "t_wall": 1.0},
            {"kind": "run_started", "t_wall": 1.0, "replicas": 5,
             "replicas_resumed": 1},
            {"kind": "chunk_done", "t_wall": 2.0, "chunk": 0,
             "worker": "pid-1", "replicas": 2, "events": 20},
        ]
    )
    text = render_openmetrics(live_summary=summary)
    assert "repro_run_replicas 5" in text
    assert "repro_run_replicas_resumed 1" in text
    assert "repro_run_replicas_done 2" in text
    assert "repro_run_events_simulated 20" in text
    assert text.endswith("# EOF\n")


def test_full_run_metrics_win_over_live_summary():
    metrics = RunMetrics.from_results(
        replicas=4,
        workers=1,
        chunk_size=4,
        wall_time_s=1.0,
        retries=0,
        events=[10],
        busy_by_worker={},
    )
    text = render_openmetrics(
        run_metrics=metrics.to_dict(),
        live_summary={"replicas_total": 999},
    )
    assert "repro_run_replicas 4" in text
    assert "999" not in text


def test_registry_to_openmetrics_delegates():
    reg = CounterRegistry()
    reg.inc("detector.symptoms", 7)
    text = reg.to_openmetrics()
    assert "repro_detector_symptoms_total 7" in text
    assert text.endswith("# EOF\n")
    metrics = RunMetrics.from_results(
        replicas=1,
        workers=1,
        chunk_size=1,
        wall_time_s=1.0,
        retries=0,
        events=[5],
        busy_by_worker={},
    )
    both = reg.to_openmetrics(metrics.to_dict())
    assert "repro_detector_symptoms_total 7" in both
    assert "repro_run_replicas 1" in both
