"""Unit tests for the span/event tracer and the trace schema."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.profiler import Profiler
from repro.obs.tracer import (
    TRACE_SCHEMA_VERSION,
    Tracer,
    _NULL_SPAN,
    canonical_lines,
    read_jsonl,
    trace_digest,
    validate_record,
    validate_trace,
    write_jsonl,
)


class FakeClock:
    """Deterministic monotonic clock for span-duration tests."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 0.5
        return self.t


def test_event_records_both_clocks():
    tracer = Tracer(clock=FakeClock())
    tracer.event("detector.symptom", t_sim_us=1_000, type="omission")
    (rec,) = tracer.records
    assert rec.kind == "event"
    assert rec.t_sim_us == 1_000
    assert rec.t_wall_s == 0.5
    assert rec.attrs == {"type": "omission"}


def test_span_measures_duration_and_notifies_listeners():
    tracer = Tracer(clock=FakeClock())
    seen: list[tuple[str, float]] = []
    tracer.span_listeners.append(lambda name, dur: seen.append((name, dur)))
    with tracer.span("assessment.epoch", t_sim_us=5):
        pass
    (rec,) = tracer.records
    assert rec.kind == "span"
    assert rec.dur_s == pytest.approx(0.5)
    assert seen == [("assessment.epoch", pytest.approx(0.5))]


def test_disabled_tracer_is_inert_and_allocation_free():
    tracer = Tracer(enabled=False)
    tracer.event("x")
    # The disabled span is one shared instance — no per-call allocation.
    assert tracer.span("a") is _NULL_SPAN
    assert tracer.span("b") is tracer.span("c")
    with tracer.span("a"):
        pass
    assert tracer.records == []


def test_sink_streams_jsonl_lines():
    import io

    sink = io.StringIO()
    tracer = Tracer(sink=sink, clock=FakeClock())
    tracer.meta(seed=7)
    tracer.event("sim.run_until", t_sim_us=10)
    lines = [json.loads(l) for l in sink.getvalue().splitlines()]
    assert lines[0]["kind"] == "meta"
    assert lines[0]["schema"] == TRACE_SCHEMA_VERSION
    assert lines[1]["name"] == "sim.run_until"
    # Streaming to a sink drops the memory copy by default.
    assert tracer.records == []


def test_write_read_roundtrip_prepends_header(tmp_path):
    tracer = Tracer(clock=FakeClock())
    tracer.event("a.b", t_sim_us=1, k=2)
    with tracer.span("a.region", t_sim_us=1):
        pass
    path = write_jsonl(
        tmp_path / "t.jsonl", tracer.record_dicts(), header_attrs={"seed": 7}
    )
    records = read_jsonl(path)
    validate_trace(records)
    assert records[0]["kind"] == "meta"
    assert records[0]["attrs"] == {"seed": 7}
    assert [r["name"] for r in records[1:]] == ["a.b", "a.region"]


def test_validate_record_catches_shape_errors():
    assert validate_record({"kind": "bogus"})
    assert validate_record({"kind": "event", "name": "", "attrs": {}})
    bad_attr = {
        "kind": "event",
        "name": "x",
        "seq": 0,
        "t_sim_us": 1,
        "t_wall_s": 0.0,
        "attrs": {"v": [1, 2]},
    }
    assert any("JSON scalar" in e for e in validate_record(bad_attr))
    span_no_dur = dict(bad_attr, attrs={}, kind="span")
    assert any("dur_s" in e for e in validate_record(span_no_dur))


def test_validate_trace_requires_meta_first_and_nonempty():
    with pytest.raises(ConfigurationError):
        validate_trace([])
    event = {
        "kind": "event",
        "name": "x",
        "seq": 0,
        "t_sim_us": None,
        "t_wall_s": 0.0,
        "attrs": {},
    }
    with pytest.raises(ConfigurationError, match="meta header"):
        validate_trace([event])


def test_canonical_lines_exclude_wall_time_and_meta():
    fast, slow = Tracer(clock=FakeClock()), Tracer()
    for tracer in (fast, slow):
        tracer.meta(run="local")
        tracer.event("a.b", t_sim_us=3, v=1.5)
        with tracer.span("a.region", t_sim_us=3):
            pass
    fast_lines = list(canonical_lines(fast.record_dicts()))
    assert fast_lines == list(canonical_lines(slow.record_dicts()))
    assert all("wall" not in line for line in fast_lines)
    assert trace_digest(fast.record_dicts()) == trace_digest(
        slow.record_dicts()
    )


def test_profiler_groups_by_subsystem():
    profiler = Profiler()
    profiler.on_span("ona.wearout", 0.25)
    profiler.on_span("ona.connector", 0.75)
    profiler.on_span("sim.run_until", 2.0)
    assert profiler.total_s == pytest.approx(3.0)
    rows = profiler.rows()
    assert rows[0] == ["sim", "1", "2.0000", "67%"]
    assert rows[1] == ["ona", "2", "1.0000", "33%"]
    assert "sim" in profiler.render()


def test_activated_restores_previous_context():
    before = obs.get_obs()
    with obs.activated() as o:
        assert obs.get_obs() is o
        assert o.enabled
    assert obs.get_obs() is before
    assert not obs.get_obs().enabled  # module default stays disabled
