"""``repro monitor`` CLI tests, including the sim-free import guarantee.

Like ``repro query``, the monitor answers from its input file alone: a
subprocess runs the real ``python -m repro monitor`` entry point against
a live log and then asserts that none of the simulator modules ever
entered ``sys.modules``.  The one-shot report is additionally pinned
byte for byte against the committed golden.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

from repro.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]
DATA = Path(__file__).parent.parent / "data"
GOLDEN_LOG = DATA / "golden_live_log.jsonl"
GOLDEN_REPORT = DATA / "golden_monitor_report.txt"

#: Simulation stack — importing any of these during a monitor is a bug.
FORBIDDEN_MODULES = (
    "repro.sim.engine",
    "repro.presets",
    "repro.components.cluster",
    "repro.faults.injector",
    "repro.diagnosis.diag_das",
)


def test_monitor_subprocess_never_imports_the_simulator():
    """End-to-end ``python -m repro monitor`` on a bare interpreter."""
    script = (
        "import runpy, sys\n"
        f"sys.argv = ['repro', 'monitor', {str(GOLDEN_LOG)!r}]\n"
        "try:\n"
        "    runpy.run_module('repro.__main__', run_name='__main__')\n"
        "except SystemExit as exc:\n"
        "    assert exc.code in (0, None), f'exit {exc.code}'\n"
        f"loaded = [m for m in sys.modules if m in {FORBIDDEN_MODULES!r}]\n"
        "assert not loaded, f'simulator imported during monitor: {loaded}'\n"
        "print('SIM-FREE-OK')\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    assert "SIM-FREE-OK" in proc.stdout
    assert "Live campaign telemetry" in proc.stdout


def test_monitor_one_shot_report_is_byte_stable(capsys):
    assert main(["monitor", str(GOLDEN_LOG)]) == 0
    assert capsys.readouterr().out == GOLDEN_REPORT.read_text(
        encoding="utf-8"
    )


def test_monitor_json_output_is_parseable(capsys):
    assert main(["monitor", str(GOLDEN_LOG), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["replicas_total"] == 8
    assert payload["finished"] is True
    assert payload["stalls"] == 1
    assert payload["backend"] == "scalar"
    assert payload["replicas_resumed"] == 2
    assert payload["skipped_lines"] == 1


def test_monitor_missing_file_fails_cleanly(tmp_path, capsys):
    assert main(["monitor", str(tmp_path / "nope.jsonl")]) == 1
    assert "cannot read live log" in capsys.readouterr().err


def test_monitor_renders_partial_progress_from_truncated_log(tmp_path):
    """The SIGKILL story: drop the tail of a live log mid-record and the
    monitor still renders an in-flight report (the CI smoke does the
    same against a genuinely killed run)."""
    full = GOLDEN_LOG.read_text(encoding="utf-8").splitlines(keepends=True)
    truncated = tmp_path / "truncated.jsonl"
    # Keep the first 8 records, then a torn half-line.
    truncated.write_text("".join(full[:8]) + full[8][: len(full[8]) // 2])
    from repro.obs.live import monitor_once

    summary, report = monitor_once(truncated)
    assert summary["finished"] is False
    assert summary["replicas_done"] == 2
    assert summary["skipped_lines"] == 1
    assert "IN FLIGHT" in report
    assert "tolerant tail" in report


def test_monitor_serve_announces_port_and_serves_once(tmp_path, capsys):
    """``repro monitor --serve 0`` binds an ephemeral port, announces
    it, answers one scrape and exits 0."""
    live = tmp_path / "live.jsonl"
    live.write_text(GOLDEN_LOG.read_text(encoding="utf-8"))

    rc: list[int] = []

    def _run():
        rc.append(main(["monitor", str(live), "--serve", "0"]))

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    # The announcement goes to the captured stdout; poll for it.
    import time

    deadline = time.monotonic() + 10.0
    port = None
    while time.monotonic() < deadline and port is None:
        out = capsys.readouterr().out
        for line in out.splitlines():
            if "serving OpenMetrics" in line:
                port = int(line.split("127.0.0.1:")[1].split("/")[0])
        time.sleep(0.02)
    assert port is not None, "server never announced its port"
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=10
    ) as resp:
        body = resp.read().decode("utf-8")
    thread.join(timeout=10)
    assert rc == [0]
    # No .prom sidecar next to the copy: degraded render from the log.
    assert "repro_run_replicas 8" in body
    assert body.endswith("# EOF\n")


# -- obs report --json (satellite) -------------------------------------------


def test_obs_report_json_summarizes_a_trace(tmp_path, capsys):
    from repro.obs.report import counters_record
    from repro.obs.counters import CounterRegistry
    from repro.obs.tracer import write_jsonl

    reg = CounterRegistry()
    reg.inc("sim.events", 10)
    records = [
        {
            "seq": 0,
            "kind": "event",
            "name": "sim.run_until",
            "t_sim_us": 500,
            "t_wall_s": 0.1,
            "attrs": {},
            "replica": 0,
        },
        counters_record(reg.snapshot()),
    ]
    path = write_jsonl(tmp_path / "t.jsonl", records, header_attrs={})
    assert main(["obs", "report", str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["by_name"] == {"sim.run_until": 1}
    assert payload["counters"] == {"sim.events": 10}
    # Without --json the rendered text report is unchanged.
    assert main(["obs", "report", str(path)]) == 0
    assert "sim.run_until" in capsys.readouterr().out


def test_obs_report_json_rejects_invalid_trace(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    assert main(["obs", "report", str(bad), "--json"]) == 1
    assert "invalid obs trace" in capsys.readouterr().out
