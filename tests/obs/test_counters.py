"""Unit tests for the counter/histogram registry and the trace report."""

from __future__ import annotations

import pytest

from repro.obs.counters import (
    CounterRegistry,
    Histogram,
    bucket_of,
    counter_key,
)
from repro.obs.report import (
    counters_record,
    flatten_counters,
    render_report,
    summarize_trace,
)
from repro.obs.tracer import write_jsonl


def test_counter_key_sorts_labels():
    assert counter_key("x") == "x"
    assert (
        counter_key("ona.triggers", {"ona": "wearout", "cls": "a"})
        == "ona.triggers{cls=a,ona=wearout}"
    )


@pytest.mark.parametrize(
    ("value", "bucket"),
    [(0, 0), (0.5, 0), (1, 1), (1.9, 1), (2, 2), (3, 2), (4, 3), (1024, 11)],
)
def test_bucket_of_power_of_two_edges(value, bucket):
    assert bucket_of(value) == bucket


def test_histogram_observe_and_summary():
    hist = Histogram()
    for value in (0, 1, 3, 8):
        hist.observe(value)
    assert hist.count == 4
    assert hist.total == 12.0
    assert (hist.min, hist.max) == (0.0, 8.0)
    assert hist.mean == 3.0
    assert hist.buckets == {0: 1, 1: 1, 2: 1, 4: 1}


def test_histogram_merge_equals_combined_stream():
    a, b, combined = Histogram(), Histogram(), Histogram()
    for value in (1, 5, 9):
        a.observe(value)
        combined.observe(value)
    for value in (0, 2):
        b.observe(value)
        combined.observe(value)
    a.merge(b)
    assert a.to_dict() == combined.to_dict()
    assert Histogram.from_dict(a.to_dict()).to_dict() == a.to_dict()


def test_registry_inc_observe_and_labels():
    reg = CounterRegistry()
    reg.inc("sim.events")
    reg.inc("sim.events", 41)
    reg.inc("ona.triggers", ona="wearout", cls="component-internal")
    reg.observe("latency", 3, stage="dissemination")
    assert reg.get("sim.events") == 42
    assert reg.get("ona.triggers", ona="wearout", cls="component-internal") == 1
    assert reg.histogram("latency", stage="dissemination").count == 1
    assert reg.counters("sim.") == {"sim.events": 42}
    assert len(reg) == 3


def test_snapshot_merge_matches_serial_run():
    serial = CounterRegistry()
    parts = [CounterRegistry() for _ in range(3)]
    for i, part in enumerate(parts):
        for _ in range(i + 1):
            part.inc("events")
            serial.inc("events")
        part.observe("lat", i)
        serial.observe("lat", i)
    merged = CounterRegistry.merged(p.snapshot() for p in parts)
    assert merged == serial.snapshot()
    # Round trip through from_snapshot keeps everything.
    assert CounterRegistry.from_snapshot(merged).snapshot() == merged


def test_snapshot_is_sorted_and_clear_empties():
    reg = CounterRegistry()
    reg.inc("b")
    reg.inc("a")
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    reg.clear()
    assert len(reg) == 0


def test_flatten_counters_includes_histogram_summaries():
    reg = CounterRegistry()
    reg.inc("x", 2)
    reg.observe("lat", 4)
    flat = flatten_counters(reg.snapshot())
    assert flat["x"] == 2
    assert flat["lat.count"] == 1
    assert flat["lat.sum"] == 4.0
    assert flat["lat.min"] == 4.0 and flat["lat.max"] == 4.0


def test_counters_record_is_schema_valid_meta():
    from repro.obs.tracer import validate_record

    reg = CounterRegistry()
    reg.inc("x")
    rec = counters_record(reg.snapshot())
    assert rec["kind"] == "meta"
    assert validate_record(rec) == []


def test_summarize_and_render_report(tmp_path):
    reg = CounterRegistry()
    reg.inc("sim.events", 10)
    records = [
        {
            "seq": 0,
            "kind": "event",
            "name": "sim.run_until",
            "t_sim_us": 500,
            "t_wall_s": 0.1,
            "attrs": {},
            "replica": 0,
        },
        counters_record(reg.snapshot()),
    ]
    path = write_jsonl(tmp_path / "t.jsonl", records, header_attrs={})
    summary = summarize_trace(records)
    assert summary["by_name"] == {"sim.run_until": 1}
    assert summary["replicas"] == 1
    assert summary["t_sim_us_range"] == [500, 500]
    assert summary["counters"] == {"sim.events": 10}
    report = render_report(path)
    assert "sim.run_until" in report
    assert "sim.events" in report
