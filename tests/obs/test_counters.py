"""Unit tests for the counter/histogram registry and the trace report."""

from __future__ import annotations

import pytest

from repro.obs.counters import (
    CounterRegistry,
    Histogram,
    bucket_of,
    counter_key,
)
from repro.obs.report import (
    counters_record,
    flatten_counters,
    render_report,
    summarize_trace,
)
from repro.obs.tracer import write_jsonl


def test_counter_key_sorts_labels():
    assert counter_key("x") == "x"
    assert (
        counter_key("ona.triggers", {"ona": "wearout", "cls": "a"})
        == "ona.triggers{cls=a,ona=wearout}"
    )


@pytest.mark.parametrize(
    ("value", "bucket"),
    [(0, 0), (0.5, 0), (1, 1), (1.9, 1), (2, 2), (3, 2), (4, 3), (1024, 11)],
)
def test_bucket_of_power_of_two_edges(value, bucket):
    assert bucket_of(value) == bucket


def test_histogram_observe_and_summary():
    hist = Histogram()
    for value in (0, 1, 3, 8):
        hist.observe(value)
    assert hist.count == 4
    assert hist.total == 12.0
    assert (hist.min, hist.max) == (0.0, 8.0)
    assert hist.mean == 3.0
    assert hist.buckets == {0: 1, 1: 1, 2: 1, 4: 1}


def test_histogram_merge_equals_combined_stream():
    a, b, combined = Histogram(), Histogram(), Histogram()
    for value in (1, 5, 9):
        a.observe(value)
        combined.observe(value)
    for value in (0, 2):
        b.observe(value)
        combined.observe(value)
    a.merge(b)
    assert a.to_dict() == combined.to_dict()
    assert Histogram.from_dict(a.to_dict()).to_dict() == a.to_dict()


def test_registry_inc_observe_and_labels():
    reg = CounterRegistry()
    reg.inc("sim.events")
    reg.inc("sim.events", 41)
    reg.inc("ona.triggers", ona="wearout", cls="component-internal")
    reg.observe("latency", 3, stage="dissemination")
    assert reg.get("sim.events") == 42
    assert reg.get("ona.triggers", ona="wearout", cls="component-internal") == 1
    assert reg.histogram("latency", stage="dissemination").count == 1
    assert reg.counters("sim.") == {"sim.events": 42}
    assert len(reg) == 3


@pytest.mark.parametrize(
    ("value", "bucket"),
    [
        (0.0, 0),  # bucket 0 = [0, 1)
        (-1.0, 0),  # negatives collapse into bucket 0 (< 1.0 branch)
        (-1e300, 0),
        (float("inf"), 0),  # frexp(inf) -> exponent 0
        (float("nan"), 0),  # nan < 1.0 is False; frexp(nan) -> exponent 0
        (0.999999, 0),
        (2**52, 53),
    ],
)
def test_bucket_of_degenerate_values_are_stable(value, bucket):
    """Non-finite and out-of-domain observations must land in a stable
    bucket rather than raise — a worker's counter snapshot must always
    merge, whatever a task recorded."""
    assert bucket_of(value) == bucket


def test_merge_snapshot_at_bucket_boundaries_matches_serial():
    """Merging snapshots whose observations sit exactly on power-of-two
    bucket edges (and beyond the finite domain) equals one serial
    stream, bucket for bucket."""
    edge_values = [0.0, 0.5, 1.0, 2.0, 4.0, 2.0**31, -3.0, float("inf")]
    serial = CounterRegistry()
    parts = [CounterRegistry() for _ in range(2)]
    for i, value in enumerate(edge_values):
        parts[i % 2].observe("lat", value)
        serial.observe("lat", value)
    merged = CounterRegistry()
    for part in parts:
        merged.merge_snapshot(part.snapshot())
    assert merged.snapshot() == serial.snapshot()
    hist = merged.histogram("lat")
    assert hist.count == len(edge_values)
    # 0.0, 0.5, -3.0 and inf all share bucket 0; each edge value 2**k
    # opens bucket k+1.
    assert hist.buckets[0] == 4
    assert hist.buckets[1] == 1  # 1.0
    assert hist.buckets[2] == 1  # 2.0
    assert hist.buckets[3] == 1  # 4.0
    assert hist.buckets[32] == 1  # 2**31
    assert hist.min == -3.0
    assert hist.max == float("inf")


def test_merge_snapshot_into_empty_and_disjoint_keys():
    a = CounterRegistry()
    a.inc("x", 2)
    a.observe("lat", 1.0, stage="a")
    b = CounterRegistry()
    b.inc("y", 3)
    b.observe("lat", 2.0, stage="b")
    target = CounterRegistry()
    target.merge_snapshot(a.snapshot())
    target.merge_snapshot(b.snapshot())
    assert target.get("x") == 2
    assert target.get("y") == 3
    assert target.histogram("lat", stage="a").count == 1
    assert target.histogram("lat", stage="b").count == 1
    # Merging an empty snapshot is the identity.
    before = target.snapshot()
    target.merge_snapshot(CounterRegistry().snapshot())
    assert target.snapshot() == before


def test_snapshot_merge_matches_serial_run():
    serial = CounterRegistry()
    parts = [CounterRegistry() for _ in range(3)]
    for i, part in enumerate(parts):
        for _ in range(i + 1):
            part.inc("events")
            serial.inc("events")
        part.observe("lat", i)
        serial.observe("lat", i)
    merged = CounterRegistry.merged(p.snapshot() for p in parts)
    assert merged == serial.snapshot()
    # Round trip through from_snapshot keeps everything.
    assert CounterRegistry.from_snapshot(merged).snapshot() == merged


def test_snapshot_is_sorted_and_clear_empties():
    reg = CounterRegistry()
    reg.inc("b")
    reg.inc("a")
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    reg.clear()
    assert len(reg) == 0


def test_flatten_counters_includes_histogram_summaries():
    reg = CounterRegistry()
    reg.inc("x", 2)
    reg.observe("lat", 4)
    flat = flatten_counters(reg.snapshot())
    assert flat["x"] == 2
    assert flat["lat.count"] == 1
    assert flat["lat.sum"] == 4.0
    assert flat["lat.min"] == 4.0 and flat["lat.max"] == 4.0


def test_counters_record_is_schema_valid_meta():
    from repro.obs.tracer import validate_record

    reg = CounterRegistry()
    reg.inc("x")
    rec = counters_record(reg.snapshot())
    assert rec["kind"] == "meta"
    assert validate_record(rec) == []


def test_summarize_and_render_report(tmp_path):
    reg = CounterRegistry()
    reg.inc("sim.events", 10)
    records = [
        {
            "seq": 0,
            "kind": "event",
            "name": "sim.run_until",
            "t_sim_us": 500,
            "t_wall_s": 0.1,
            "attrs": {},
            "replica": 0,
        },
        counters_record(reg.snapshot()),
    ]
    path = write_jsonl(tmp_path / "t.jsonl", records, header_attrs={})
    summary = summarize_trace(records)
    assert summary["by_name"] == {"sim.run_until": 1}
    assert summary["replicas"] == 1
    assert summary["t_sim_us_range"] == [500, 500]
    assert summary["counters"] == {"sim.events": 10}
    report = render_report(path)
    assert "sim.run_until" in report
    assert "sim.events" in report
