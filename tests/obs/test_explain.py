"""Tests for `repro explain`, `obs report` hardening and the exporter."""

from __future__ import annotations

import json
from pathlib import Path

from repro import obs
from repro.obs.explain import (
    NO_PROVENANCE_MESSAGE,
    build_graph,
    explain,
    has_provenance,
    render_explain,
)
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.report import counters_record, render_report
from repro.obs.tracer import Tracer, write_jsonl

GOLDEN_REPORT = Path(__file__).parent.parent / "data" / "golden_obs_report.txt"


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 0.5
        return self.t


def _causal_records():
    """A deterministic mini-trace with one complete causal chain."""
    tracer = Tracer(clock=FakeClock())
    tracer.meta(command="test", root_seed=7)
    tracer.causal_event(
        "fault.injected",
        100,
        "fault:F0001",
        (),
        fault_id="F0001",
        fru="component:comp2",
        cls="component-internal",
        mechanism="permanent-silent",
    )
    tracer.causal_event(
        "detector.symptom",
        300,
        "sym:1",
        ("fault:F0001",),
        type="OMISSION",
        subject="comp2",
    )
    tracer.causal_event(
        "ona.trigger", 900, "ona:1", ("sym:1",), subject="component:comp2"
    )
    tracer.causal_event(
        "trust.suspicious", 1_200, "trust:1", ("ona:1",), fru="component:comp2"
    )
    tracer.causal_event(
        "maintenance.recommendation",
        None,
        "maint:1",
        ("trust:1",),
        fru="component:comp2",
        action="REPLACE_COMPONENT",
    )
    return tracer.record_dicts()


# -- obs report hardening -----------------------------------------------------


def test_report_empty_file_is_a_message_not_a_traceback(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    out = render_report(path)
    assert "empty file" in out


def test_read_jsonl_rejects_malformed_lines_with_context(tmp_path):
    import pytest

    from repro.errors import ConfigurationError
    from repro.obs.tracer import read_jsonl

    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json at all\n")
    with pytest.raises(ConfigurationError, match="line 1 is not valid JSON"):
        read_jsonl(bad)
    scalar = tmp_path / "scalar.jsonl"
    scalar.write_text('{"kind": "meta", "name": "trace.header"}\n[1, 2]\n')
    with pytest.raises(ConfigurationError, match="line 2 is not a JSON object"):
        read_jsonl(scalar)


def test_report_meta_only_trace(tmp_path):
    tracer = Tracer()
    tracer.meta(command="noop")
    path = write_jsonl(tmp_path / "meta.jsonl", tracer.record_dicts())
    out = render_report(path)
    assert "meta header only" in out


def test_report_zero_histogram_counters(tmp_path):
    # A counters record whose histograms never saw a sample (min/max None)
    # must render, not raise.
    registry = obs.CounterRegistry()
    registry.inc("alpha.promotions")
    snapshot = registry.snapshot()
    snapshot["histograms"]["lat"] = {
        "count": 0,
        "sum": 0,
        "min": None,
        "max": None,
        "buckets": {},
    }
    tracer = Tracer()
    tracer.meta(command="x")
    records = tracer.record_dicts() + [counters_record(snapshot)]
    path = write_jsonl(tmp_path / "zh.jsonl", records)
    out = render_report(path)
    assert "alpha.promotions" in out
    assert "lat.min" not in out


def test_report_is_byte_stable_against_the_golden_file(tmp_path):
    registry = obs.CounterRegistry()
    registry.inc("detector.symptoms", type="omission")
    registry.inc("detector.symptoms", type="omission")
    registry.observe("assessment.window", 3)
    records = _causal_records() + [counters_record(registry.snapshot())]
    path = write_jsonl(tmp_path / "golden.jsonl", records)
    out = render_report(path)
    assert out == GOLDEN_REPORT.read_text().rstrip("\n")


# -- explain ------------------------------------------------------------------


def test_v1_style_records_have_no_provenance(tmp_path):
    tracer = Tracer()
    tracer.meta(command="x")
    tracer.event("detector.symptom", t_sim_us=5)
    records = tracer.record_dicts()
    assert not has_provenance(records)
    assert explain(records) == {"provenance": False, "chains": []}
    assert render_explain(records) == NO_PROVENANCE_MESSAGE
    assert "no provenance" in NO_PROVENANCE_MESSAGE


def test_build_graph_collapses_rereports_to_earliest_time():
    records = _causal_records()
    records.append(dict(records[2], t_sim_us=700))  # sym:1 seen again later
    nodes, children = build_graph(records)
    assert nodes[(0, "sym:1")]["t_sim_us"] == 300
    assert (0, "sym:1") in children[(0, "fault:F0001")]


def test_explain_reconstructs_the_full_chain():
    result = explain(_causal_records())
    assert result["provenance"] and result["monotonic"]
    (chain,) = result["chains"]
    assert chain["fault_id"] == "F0001"
    assert chain["terminal"] == "maintenance"
    assert chain["stages"] == [
        "fault",
        "symptom",
        "ona",
        "trust",
        "maintenance",
    ]
    assert chain["stage_latency_us"] == {
        "fault->symptom": 200,
        "symptom->ona": 600,
        "ona->trust": 300,
    }
    assert chain["maintenance_actions"] == ["REPLACE_COMPONENT"]
    assert chain["monotonic"] is True


def test_explain_filters_by_fault_and_fru():
    records = _causal_records()
    assert explain(records, fault="F0001")["chains"]
    assert not explain(records, fault="F9999")["chains"]
    assert explain(records, fru="comp2")["chains"]
    assert explain(records, fru="component:comp2")["chains"]
    assert not explain(records, fru="comp9")["chains"]


def test_explain_flags_non_monotonic_paths():
    records = _causal_records()
    for rec in records:
        if rec.get("cause_id") == "ona:1":
            rec["t_sim_us"] = 10  # before its symptom parent
    result = explain(records)
    assert result["monotonic"] is False
    assert "WARNING" in render_explain(records)


def test_render_explain_shows_the_annotated_tree():
    out = render_explain(_causal_records())
    assert "F0001 permanent-silent on component:comp2" in out
    assert "-> maintenance (REPLACE_COMPONENT)" in out
    assert "detector.symptom t=300us (+200us)" in out
    assert "maintenance.recommendation t=?" in out
    assert "stage latencies:" in out


# -- chrome export ------------------------------------------------------------


def test_chrome_trace_structure():
    doc = chrome_trace(_causal_records())
    events = doc["traceEvents"]
    assert doc["otherData"]["command"] == "test"
    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == 5
    # One flow arrow pair per causal edge (4 edges in the chain).
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == len(finishes) == 4
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}
    # The untimed maintenance leaf is clamped onto the timeline.
    maint = next(e for e in instants if e["name"] == "maintenance.recommendation")
    assert maint["ts"] == 1_200
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert "replica 0" in names


def test_chrome_export_writes_valid_json(tmp_path):
    path = write_chrome_trace(_causal_records(), tmp_path / "t.chrome.json")
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["schema"] == 2
    assert any(e["ph"] == "s" for e in doc["traceEvents"])
