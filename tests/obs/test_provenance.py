"""Unit tests for causal provenance: tracker, fold, schema v2."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core.fault_model import FaultClass, component_fru
from repro.core.ona import OnaTrigger
from repro.core.symptoms import Symptom, SymptomType
from repro.errors import ConfigurationError
from repro.obs.provenance import (
    STAGE_BY_NAME,
    STAGES,
    ProvenanceTracker,
    fold_stage_latencies,
    histogram_quantile,
)
from repro.obs.tracer import (
    SUPPORTED_SCHEMA_VERSIONS,
    TRACE_SCHEMA_VERSION,
    Tracer,
    read_jsonl,
    trace_digest,
    validate_record,
    validate_trace,
    write_jsonl,
)


def _symptom(
    subject="comp1",
    time_us=100,
    type_=SymptomType.OMISSION,
    job=None,
    channel=None,
    lattice_point=1,
):
    return Symptom(
        type=type_,
        observer="comp9",
        subject_component=subject,
        time_us=time_us,
        lattice_point=lattice_point,
        subject_job=job,
        channel=channel,
    )


# -- tracker ------------------------------------------------------------------


def test_new_id_is_a_deterministic_per_prefix_sequence():
    tracker = ProvenanceTracker()
    assert tracker.new_id("sym") == "sym:1"
    assert tracker.new_id("sym") == "sym:2"
    assert tracker.new_id("ona") == "ona:1"
    assert ProvenanceTracker().new_id("sym") == "sym:1"


def test_fault_parents_respect_activation_time():
    tracker = ProvenanceTracker()
    early = tracker.register_fault("F0001", ["comp1"], 50)
    late = tracker.register_fault("F0002", ["comp1"], 500)
    assert early == "fault:F0001"
    assert tracker.fault_parents(["comp1"], 100) == ("fault:F0001",)
    assert tracker.fault_parents(["comp1"], 600) == (early, late)
    assert tracker.fault_parents(["comp2"], 600) == ()
    assert tracker.fault_parents([None], 600) == ()


def test_symptom_node_is_allocated_once_per_dedup_key():
    tracker = ProvenanceTracker()
    tracker.register_fault("F0001", ["comp1"], 50)
    a = _symptom(time_us=100)
    b = _symptom(time_us=150)  # same key, later re-report
    id_a, parents_a = tracker.symptom_node(a)
    id_b, parents_b = tracker.symptom_node(b)
    assert id_a == id_b == "sym:1"
    assert parents_a == parents_b == ("fault:F0001",)
    assert tracker.symptom_id(a.key()) == "sym:1"
    assert tracker.symptom_id(_symptom(subject="other").key()) is None


def test_symptom_node_links_job_and_channel_subjects():
    tracker = ProvenanceTracker()
    tracker.register_fault("F0001", ["A2"], 0)
    tracker.register_fault("F0002", ["loom-channel-1"], 0)
    sym_id, parents = tracker.symptom_node(
        _symptom(subject="comp3", job="A2", channel=1)
    )
    assert parents == ("fault:F0001", "fault:F0002")


def test_trigger_parents_match_subject_and_respect_time():
    tracker = ProvenanceTracker()
    tracker.register_fault("F0001", ["comp1"], 0)
    early = _symptom(time_us=100)
    late = _symptom(time_us=900, lattice_point=2)
    other = _symptom(subject="comp2", time_us=100)
    for s in (early, late, other):
        tracker.symptom_node(s)
    trigger = OnaTrigger(
        ona="crash",
        fault_class=FaultClass.COMPONENT_INTERNAL,
        subject=component_fru("comp1"),
        time_us=500,
        confidence=0.9,
        evidence=3,
    )
    parents = tracker.trigger_parents(trigger, [early, late, other])
    # late (after the trigger) and other (wrong subject) are excluded.
    assert parents == (tracker.symptom_id(early.key()),)


def test_trigger_parents_resolve_loom_channel_pseudo_subject():
    from repro.core.fault_model import FruKind, FruRef

    tracker = ProvenanceTracker()
    on_channel = _symptom(channel=1, time_us=100)
    tracker.symptom_node(on_channel)
    trigger = OnaTrigger(
        ona="wiring",
        fault_class=FaultClass.COMPONENT_BORDERLINE,
        subject=FruRef(FruKind.COMPONENT, "loom-channel-1"),
        time_us=500,
        confidence=0.9,
        evidence=1,
    )
    assert tracker.trigger_parents(trigger, [on_channel]) == (
        tracker.symptom_id(on_channel.key()),
    )


def test_evidence_ledgers_deduplicate_and_cap():
    tracker = ProvenanceTracker()
    tracker.add_evidence("component:comp1", "ona:1")
    tracker.add_evidence("component:comp1", "ona:1")
    tracker.add_evidence("component:comp1", "alpha:1")
    assert tracker.evidence("component:comp1") == ("ona:1", "alpha:1")
    assert tracker.evidence("component:none") == ()
    for i in range(40):
        tracker.add_alpha_evidence("component:comp1", f"sym:{i}")
    kept = tracker.alpha_evidence("component:comp1")
    assert len(kept) == ProvenanceTracker.MAX_PARENTS
    assert kept[-1] == "sym:39"


# -- stage-latency fold -------------------------------------------------------


def _chain_records():
    """A hand-built two-fault trace: one full chain, one symptom-only."""
    return [
        {"kind": "meta", "schema": 2, "name": "trace.header", "attrs": {}},
        {
            "kind": "event",
            "name": "fault.injected",
            "t_sim_us": 100,
            "cause_id": "fault:F0001",
            "attrs": {"cls": "component-internal"},
        },
        {
            "kind": "event",
            "name": "detector.symptom",
            "t_sim_us": 300,
            "cause_id": "sym:1",
            "parents": ["fault:F0001"],
            "attrs": {},
        },
        {
            # Re-report of the same node at a later time: fold keeps 300.
            "kind": "event",
            "name": "detector.symptom",
            "t_sim_us": 800,
            "cause_id": "sym:1",
            "parents": ["fault:F0001"],
            "attrs": {},
        },
        {
            "kind": "event",
            "name": "ona.trigger",
            "t_sim_us": 1_300,
            "cause_id": "ona:1",
            "parents": ["sym:1"],
            "attrs": {},
        },
        {
            "kind": "event",
            "name": "maintenance.recommendation",
            "t_sim_us": None,
            "cause_id": "maint:1",
            "parents": ["ona:1"],
            "attrs": {},
        },
        {
            "kind": "event",
            "name": "fault.injected",
            "t_sim_us": 500,
            "cause_id": "fault:F0002",
            "attrs": {"cls": "seu"},
        },
        {
            "kind": "event",
            "name": "detector.symptom",
            "t_sim_us": 600,
            "cause_id": "sym:2",
            "parents": ["fault:F0002"],
            "attrs": {},
        },
    ]


def test_fold_stage_latencies_observes_deltas_and_terminals():
    counters = obs.CounterRegistry()
    fold_stage_latencies(_chain_records(), counters)
    snap = counters.snapshot()
    hists = snap["histograms"]
    key = "provenance.stage_latency_us{cls=component-internal,stage=fault->symptom}"
    assert hists[key]["sum"] == 200  # earliest re-report wins: 300 - 100
    key = "provenance.stage_latency_us{cls=component-internal,stage=symptom->ona}"
    assert hists[key]["sum"] == 1_000
    chains = snap["counters"]
    # The untimed maintenance leaf still counts as the terminal stage.
    assert (
        chains["provenance.chains{cls=component-internal,terminal=maintenance}"]
        == 1
    )
    assert chains["provenance.chains{cls=seu,terminal=symptom}"] == 1


def test_fold_accepts_raw_obs_records():
    tracer = Tracer()
    tracer.causal_event(
        "fault.injected", 100, "fault:F0001", (), cls="seu", fault_id="F0001"
    )
    tracer.causal_event("detector.symptom", 250, "sym:1", ("fault:F0001",))
    counters = obs.CounterRegistry()
    fold_stage_latencies(tracer.records, counters)
    snap = counters.snapshot()
    key = "provenance.stage_latency_us{cls=seu,stage=fault->symptom}"
    assert snap["histograms"][key]["sum"] == 150
    # Same result from the dict form.
    dict_counters = obs.CounterRegistry()
    fold_stage_latencies(tracer.record_dicts(), dict_counters)
    assert dict_counters.snapshot() == snap


def test_histogram_quantile_returns_clamped_bucket_edges():
    counters = obs.CounterRegistry()
    for value in (1, 2, 3, 100):
        counters.observe("lat", value)
    hist = counters.snapshot()["histograms"]["lat"]
    # Median of (1, 2, 3, 100) falls in bucket [2, 4) -> upper edge 4.
    assert histogram_quantile(hist, 0.5) == 4.0
    assert histogram_quantile(hist, 1.0) == 100.0  # clamped to max
    assert histogram_quantile({"count": 0}, 0.5) == 0.0


def test_stage_tables_agree():
    assert set(STAGE_BY_NAME.values()) == set(STAGES)


# -- schema v2 ----------------------------------------------------------------


def test_causal_event_roundtrips_losslessly(tmp_path):
    tracer = Tracer()
    tracer.meta(run="x")
    tracer.causal_event(
        "fault.injected", 10, "fault:F0001", (), fault_id="F0001"
    )
    tracer.causal_event("detector.symptom", 20, "sym:1", ("fault:F0001",))
    tracer.event("assessment.epoch", t_sim_us=30)  # no lineage
    path = write_jsonl(tmp_path / "t.jsonl", tracer.record_dicts())
    records = read_jsonl(path)
    validate_trace(records)
    assert records[0]["schema"] == TRACE_SCHEMA_VERSION == 2
    assert records[1]["cause_id"] == "fault:F0001"
    assert "parents" not in records[1]  # empty parent list is elided
    assert records[2]["parents"] == ["fault:F0001"]
    assert "cause_id" not in records[3]
    # JSONL -> dicts -> JSONL is byte-stable.
    second = write_jsonl(tmp_path / "t2.jsonl", records)
    assert second.read_text() == path.read_text()
    assert trace_digest(records) == trace_digest(tracer.record_dicts())


def test_v1_meta_headers_still_validate():
    assert SUPPORTED_SCHEMA_VERSIONS == (1, 2)
    v1 = {"kind": "meta", "schema": 1, "name": "trace.header", "attrs": {}}
    assert validate_record(v1) == []
    v9 = dict(v1, schema=9)
    assert any("schema" in e for e in validate_record(v9))


def test_validate_record_rejects_malformed_lineage():
    base = {
        "kind": "event",
        "name": "x",
        "seq": 0,
        "t_sim_us": 1,
        "t_wall_s": 0.0,
        "attrs": {},
    }
    assert validate_record(dict(base, cause_id="a:1")) == []
    assert validate_record(dict(base, cause_id="a:1", parents=["b:1"])) == []
    assert any(
        "cause_id" in e for e in validate_record(dict(base, cause_id=""))
    )
    assert any(
        "cause_id" in e for e in validate_record(dict(base, cause_id=7))
    )
    assert any(
        "parents" in e
        for e in validate_record(dict(base, cause_id="a:1", parents=[""]))
    )
    assert any(
        "parents" in e for e in validate_record(dict(base, parents=["b:1"]))
    )


def test_lineage_does_not_perturb_the_trace_digest():
    plain, causal = Tracer(), Tracer()
    plain.event("detector.symptom", t_sim_us=5, type="omission")
    causal.causal_event(
        "detector.symptom", 5, "sym:1", ("fault:F0001",), type="omission"
    )
    assert trace_digest(plain.record_dicts()) == trace_digest(
        causal.record_dicts()
    )


def test_observability_provenance_wiring():
    o = obs.Observability(provenance=True)
    assert o.provenance is not None
    assert o.tracer.enabled  # lineage needs records, even without --trace
    assert obs.Observability().provenance is None
    assert obs.DISABLED.provenance is None


def test_disabled_tracer_ignores_causal_events():
    tracer = Tracer(enabled=False)
    tracer.causal_event("x", 1, "a:1", ())
    assert tracer.records == []
