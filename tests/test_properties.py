"""Cross-cutting property-based tests (hypothesis batch 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.components.ports import Message
from repro.components.virtual_network import PortAddress, VirtualNetwork, VnLink
from repro.core.maintenance import CostModel, MaintenanceAction
from repro.core.patterns import compress_episodes, measure_signature
from repro.core.symptoms import Symptom, SymptomType
from repro.core.trust import TrustLevel
from repro.tta.sync import fault_tolerant_average


# -- virtual networks ----------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=0, max_value=64),
)
def test_property_vn_admit_respects_budget(budget, n_messages):
    vn = VirtualNetwork(
        "v",
        "d",
        (VnLink(PortAddress("j", "out"), ()),),
        slot_budget=budget,
    )
    messages = [Message("j", "out", float(i), i, 0) for i in range(n_messages)]
    admitted = vn.admit(messages)
    assert len(admitted) == min(budget, n_messages)
    assert vn.tx_overflows == max(0, n_messages - budget)
    assert admitted == messages[: len(admitted)]  # prefix order preserved


# -- cost model ------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.sampled_from(list(MaintenanceAction)),
            st.booleans(),
        ),
        max_size=50,
    )
)
def test_property_cost_model_invariants(records):
    model = CostModel(removal_cost_usd=800.0)
    for action, justified in records:
        model.record(action, fault_present_in_removed_fru=justified)
    assert 0 <= model.nff_removals <= model.removals <= len(records)
    assert model.wasted_cost_usd == model.nff_removals * 800.0
    assert 0.0 <= model.nff_ratio <= 1.0
    removal_actions = {
        MaintenanceAction.REPLACE_COMPONENT,
        MaintenanceAction.INSPECT_TRANSDUCER,
        MaintenanceAction.INSPECT_CONNECTOR,
    }
    expected_removals = sum(1 for a, _ in records if a in removal_actions)
    assert model.removals == expected_removals


# -- trust ------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=60))
def test_property_trust_stays_in_bounds(weights):
    level = TrustLevel(demerit=0.6, recovery=0.05, floor=0.02)
    for t, weight in enumerate(weights):
        value = level.update(weight, t)
        assert 0.02 - 1e-12 <= value <= 1.0


@given(st.floats(min_value=0.01, max_value=5.0))
def test_property_trust_violation_never_increases(weight):
    level = TrustLevel()
    before = level.value
    after = level.update(weight, 0)
    assert after < before or after == level.floor


# -- FTA -------------------------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=-1000, max_value=1000),
        min_size=5,
        max_size=25,
    ),
    st.floats(min_value=1e4, max_value=1e8),
    st.floats(min_value=1e4, max_value=1e8),
)
def test_property_fta_tolerates_two_outliers_with_k2(good, out1, out2):
    result = fault_tolerant_average(good + [out1, -out2], k=2)
    assert min(good) - 1e-9 <= result <= max(good) + 1e-9


# -- patterns ------------------------------------------------------------------------


def _sym(point, subject="c0"):
    return Symptom(
        type=SymptomType.OMISSION,
        observer="obs",
        subject_component=subject,
        time_us=point,
        lattice_point=point,
    )


@given(
    st.lists(st.integers(min_value=0, max_value=5_000), max_size=80),
    st.integers(min_value=1, max_value=20),
)
def test_property_compress_episodes_monotone_and_bounded(points, gap):
    symptoms = [_sym(p) for p in points]
    compressed = compress_episodes(symptoms, gap_points=gap)
    out_points = [s.lattice_point for s in compressed]
    assert out_points == sorted(out_points)
    assert len(compressed) <= len(set(points)) if points else True
    # consecutive episode starts are separated by more than the gap
    assert all(
        b - a > gap for a, b in zip(out_points, out_points[1:])
    )


@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
def test_property_signature_fields_well_defined(points):
    signature = measure_signature([_sym(p) for p in points])
    assert signature.n_symptoms == len(points)
    if points:
        assert 0.0 < signature.simultaneity <= 1.0
        assert signature.frequency_trend > 0.0
        assert signature.lattice_spread == max(points) - min(points)
