"""Unit tests for symptoms."""

from __future__ import annotations

from repro.core.symptoms import Symptom, SymptomType


def sym(**kwargs):
    base = dict(
        type=SymptomType.OMISSION,
        observer="c1",
        subject_component="c0",
        time_us=1000,
        lattice_point=1,
    )
    base.update(kwargs)
    return Symptom(**base)


def test_every_type_has_a_domain():
    for st_ in SymptomType:
        assert st_.domain in ("time", "value", "time+value")


def test_domain_assignments():
    assert SymptomType.OMISSION.domain == "time"
    assert SymptomType.TIMING_VIOLATION.domain == "time"
    assert SymptomType.CRC_ERROR.domain == "value"
    assert SymptomType.VALUE_VIOLATION.domain == "value"
    assert SymptomType.SENSOR_IMPLAUSIBLE.domain == "value"
    assert SymptomType.QUEUE_OVERFLOW.domain == "time+value"


def test_dedup_key_merges_observers():
    a = sym(observer="c1")
    b = sym(observer="c2")
    assert a.key() == b.key()


def test_dedup_key_separates_subjects_and_points():
    assert sym(subject_component="cX").key() != sym().key()
    assert sym(lattice_point=2).key() != sym().key()
    assert sym(subject_job="j").key() != sym().key()


def test_channel_omission_key_keeps_observer():
    a = sym(type=SymptomType.CHANNEL_OMISSION, channel=0, observer="c1")
    b = sym(type=SymptomType.CHANNEL_OMISSION, channel=0, observer="c2")
    assert a.key() != b.key()
    c = sym(type=SymptomType.CHANNEL_OMISSION, channel=1, observer="c1")
    assert a.key() != c.key()
