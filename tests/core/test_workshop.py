"""Unit + integration tests for the service station (repair loop)."""

from __future__ import annotations

import pytest

from repro.core.fault_model import (
    FaultClass,
    Persistence,
    component_fru,
    job_fru,
)
from repro.core.classification import Verdict
from repro.core.maintenance import MaintenanceAction, determine_action
from repro.core.workshop import ServiceStation
from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster
from repro.units import ms, seconds


def make_rec(action, fru, fault_class=FaultClass.COMPONENT_INTERNAL):
    from repro.core.maintenance import MaintenanceRecommendation

    return MaintenanceRecommendation(
        fru=fru,
        fault_class=fault_class,
        action=action,
        confidence=1.0,
        removes_fru=True,
    )


@pytest.fixture
def broken_vehicle():
    parts = figure10_cluster(seed=17)
    cluster = parts.cluster
    service = DiagnosticService(cluster, collector="comp5")
    injector = FaultInjector(cluster)
    return parts, cluster, service, injector


def test_replace_component_repairs_permanent_fault(broken_vehicle):
    parts, cluster, service, injector = broken_vehicle
    injector.inject_permanent_internal("comp2", ms(200))
    cluster.run(seconds(2))
    station = ServiceStation(cluster)
    recs = [determine_action(v) for v in service.verdicts()]
    orders = station.execute_all(recs)
    assert any(
        o.recommendation.action is MaintenanceAction.REPLACE_COMPONENT
        for o in orders
    )
    # the bench confirms the removed unit was really broken
    assert station.justified_removals == 1
    assert station.nff_count == 0
    # and the vehicle runs clean afterwards
    before = cluster.trace.count("frame.silent")
    cluster.run(seconds(1))
    assert cluster.trace.count("frame.silent") == before
    assert cluster.components["comp2"].operational(cluster.now)


def test_replacement_for_external_fault_is_nff(broken_vehicle):
    parts, cluster, service, injector = broken_vehicle
    cluster.run(ms(100))
    # A misguided replacement of a healthy unit retests OK at the bench.
    station = ServiceStation(cluster)
    order = station.execute(
        make_rec(MaintenanceAction.REPLACE_COMPONENT, component_fru("comp3"))
    )
    assert order.bench_retest_ok is True
    assert station.nff_count == 1


def test_connector_reseat_clears_borderline_fault(broken_vehicle):
    parts, cluster, service, injector = broken_vehicle
    injector.inject_connector_fault("comp3", 0, omission_prob=1.0, at_us=ms(100))
    cluster.run(seconds(1))
    att = cluster.bus.attachment("comp3")
    assert att.tx[0].omission_prob > 0
    station = ServiceStation(cluster)
    station.execute(
        make_rec(
            MaintenanceAction.INSPECT_CONNECTOR,
            component_fru("comp3"),
            FaultClass.COMPONENT_BORDERLINE,
        )
    )
    assert att.tx[0].omission_prob == 0.0
    assert att.rx[0].omission_prob == 0.0


def test_loom_repair(broken_vehicle):
    parts, cluster, service, injector = broken_vehicle
    injector.inject_wiring_fault(1, omission_prob=0.5, at_us=ms(100))
    cluster.run(seconds(1))
    station = ServiceStation(cluster)
    station.execute(
        make_rec(
            MaintenanceAction.INSPECT_CONNECTOR,
            component_fru("loom-channel-1"),
            FaultClass.COMPONENT_BORDERLINE,
        )
    )
    assert cluster.bus.channel_state[1].omission_prob == 0.0


def test_configuration_update_stops_overflows(broken_vehicle):
    parts, cluster, service, injector = broken_vehicle
    injector.inject_queue_config_fault("A3", "in", capacity=1, at_us=ms(100))
    cluster.run(seconds(1))
    port = cluster.job("A3").port("in")
    assert port.overflow_count > 0
    station = ServiceStation(cluster)
    station.execute(
        make_rec(
            MaintenanceAction.UPDATE_CONFIGURATION,
            job_fru("A3"),
            FaultClass.JOB_BORDERLINE,
        )
    )
    overflows_before = port.overflow_count
    cluster.run(seconds(1))
    assert port.overflow_count == overflows_before


def test_transducer_replacement(broken_vehicle):
    parts, cluster, service, injector = broken_vehicle
    injector.inject_sensor_fault("C1", ms(100), mode="stuck", stuck_value=3.0)
    cluster.run(seconds(1))
    station = ServiceStation(cluster)
    order = station.execute(
        make_rec(
            MaintenanceAction.INSPECT_TRANSDUCER,
            job_fru("C1"),
            FaultClass.JOB_INHERENT_TRANSDUCER,
        )
    )
    assert order.bench_retest_ok is False  # the sensor really was faulty
    assert cluster.job("C1").sensor_transform is None


def test_transducer_inspection_of_healthy_sensor_is_nff(broken_vehicle):
    parts, cluster, service, injector = broken_vehicle
    cluster.run(ms(100))
    station = ServiceStation(cluster)
    order = station.execute(
        make_rec(
            MaintenanceAction.INSPECT_TRANSDUCER,
            job_fru("C1"),
            FaultClass.JOB_INHERENT_TRANSDUCER,
        )
    )
    assert order.bench_retest_ok is True


def test_software_update_clears_bug(broken_vehicle):
    parts, cluster, service, injector = broken_vehicle
    injector.inject_software_bohrbug("A2", ms(100))
    cluster.run(seconds(1))
    station = ServiceStation(cluster)
    station.execute(
        make_rec(
            MaintenanceAction.UPDATE_SOFTWARE,
            job_fru("A2"),
            FaultClass.JOB_INHERENT_SOFTWARE,
        )
    )
    job = cluster.job("A2")
    assert job.behaviour_wrapper is None
    assert job.version.endswith("+fix")
    spec = job.spec.port("out").value_spec
    trace_before = len(cluster.trace)
    cluster.run(seconds(1))
    # no further value violations reach the wire
    violations = [
        m
        for m in cluster.job("A3").state.get("consumed", [])
        if not spec.conforms(m)
    ]
    assert violations == []


def test_no_action_and_forward_do_not_touch_vehicle(broken_vehicle):
    parts, cluster, service, injector = broken_vehicle
    cluster.run(ms(100))
    station = ServiceStation(cluster)
    order1 = station.execute(
        make_rec(
            MaintenanceAction.NO_ACTION,
            component_fru("comp1"),
            FaultClass.COMPONENT_EXTERNAL,
        )
    )
    order2 = station.execute(
        make_rec(
            MaintenanceAction.FORWARD_TO_OEM,
            job_fru("A1"),
            FaultClass.JOB_INHERENT_SOFTWARE,
        )
    )
    assert not order1.executed and not order2.executed
    assert station.nff_count == 0


def test_replacement_cancels_scheduled_fault_effects(broken_vehicle):
    """Future outages of a wearing-out unit die with the replaced unit."""
    parts, cluster, service, injector = broken_vehicle
    injector.inject_recurring_transients(
        "comp2", ms(100), seconds(4), fit=1.0, min_occurrences=10
    )
    cluster.run(seconds(1))
    assert cluster.trace.count("frame.silent") > 0
    station = ServiceStation(cluster)
    station.execute(
        make_rec(MaintenanceAction.REPLACE_COMPONENT, component_fru("comp2"))
    )
    silent_before = cluster.trace.count("frame.silent")
    cluster.run(seconds(3))
    assert cluster.trace.count("frame.silent") == silent_before


def test_repair_acknowledgement_resets_diagnosis(broken_vehicle):
    """With the diagnosis wired to the station, a repaired FRU's record
    is cleared: the new unit starts fully trusted and verdict-free."""
    parts, cluster, service, injector = broken_vehicle
    injector.inject_permanent_internal("comp2", ms(200))
    cluster.run(seconds(2))
    assert service.verdicts()
    station = ServiceStation(cluster, diagnosis=service)
    station.execute_all([determine_action(v) for v in service.verdicts()])
    assert service.verdicts() == []
    assert service.assessment.trust.values()["component:comp2"] == 1.0
    cluster.run(seconds(1))
    assert service.verdicts() == []
