"""Unit tests for the classifier (evidence ledger + alpha interplay)."""

from __future__ import annotations

import pytest

from repro.core.classification import Classifier
from repro.core.fault_model import (
    FaultClass,
    Persistence,
    component_fru,
    job_fru,
)
from repro.core.ona import OnaTrigger


def trig(fault_class, subject, confidence=0.8, time_us=1000, evidence=3):
    return OnaTrigger(
        ona="test",
        fault_class=fault_class,
        subject=subject,
        time_us=time_us,
        confidence=confidence,
        evidence=evidence,
    )


def test_single_trigger_yields_verdict():
    clf = Classifier()
    clf.ingest([trig(FaultClass.COMPONENT_BORDERLINE, component_fru("c1"))])
    verdicts = clf.verdicts()
    assert len(verdicts) == 1
    assert verdicts[0].fault_class is FaultClass.COMPONENT_BORDERLINE
    assert verdicts[0].fru == component_fru("c1")


def test_min_confidence_filters():
    clf = Classifier()
    clf.ingest(
        [trig(FaultClass.COMPONENT_EXTERNAL, component_fru("c1"), confidence=0.2)]
    )
    assert clf.verdicts(min_confidence=0.3) == []
    assert len(clf.verdicts(min_confidence=0.1)) == 1


def test_strongest_class_wins_per_fru():
    clf = Classifier()
    fru = component_fru("c1")
    clf.ingest(
        [
            trig(FaultClass.COMPONENT_EXTERNAL, fru, confidence=0.4),
            trig(FaultClass.COMPONENT_INTERNAL, fru, confidence=0.9),
        ]
    )
    assert clf.verdicts()[0].fault_class is FaultClass.COMPONENT_INTERNAL


def test_verdicts_sorted_by_confidence():
    clf = Classifier()
    clf.ingest(
        [
            trig(FaultClass.JOB_INHERENT_SOFTWARE, job_fru("j1"), confidence=0.5),
            trig(FaultClass.COMPONENT_INTERNAL, component_fru("c1"), confidence=0.9),
        ]
    )
    verdicts = clf.verdicts()
    assert verdicts[0].fru == component_fru("c1")


def test_verdict_for_specific_fru():
    clf = Classifier()
    clf.ingest([trig(FaultClass.JOB_BORDERLINE, job_fru("j1"))])
    assert clf.verdict_for(job_fru("j1")).fault_class is FaultClass.JOB_BORDERLINE
    assert clf.verdict_for(job_fru("other")) is None


def test_alpha_count_adds_internal_weight_for_recurring_failures():
    clf = Classifier(alpha_decay=0.9, alpha_threshold=2.0)
    for i in range(4):
        clf.observe_component_epoch("c1", failed=True, now_us=i)
    verdicts = clf.verdicts()
    assert len(verdicts) == 1
    assert verdicts[0].fault_class is FaultClass.COMPONENT_INTERNAL


def test_externally_explained_failures_do_not_accumulate_alpha():
    clf = Classifier(alpha_decay=0.9, alpha_threshold=2.0)
    for i in range(6):
        clf.observe_component_epoch(
            "c1", failed=True, now_us=i, external_evidence=True
        )
    # no internal verdict: all failures had an external explanation
    assert all(
        v.fault_class is not FaultClass.COMPONENT_INTERNAL
        for v in clf.verdicts()
    )


def test_external_trigger_survives_when_failures_explained():
    clf = Classifier(alpha_decay=0.9, alpha_threshold=2.0)
    fru = component_fru("c1")
    clf.ingest([trig(FaultClass.COMPONENT_EXTERNAL, fru, confidence=0.9)])
    for i in range(4):
        clf.observe_component_epoch(
            "c1", failed=True, now_us=i, external_evidence=True
        )
    assert clf.verdicts()[0].fault_class is FaultClass.COMPONENT_EXTERNAL


def test_persistence_estimates():
    clf = Classifier(permanence_window=4)
    # permanent: every recent epoch failed
    for i in range(6):
        clf.observe_component_epoch("dead", failed=True, now_us=i)
    # intermittent: several triggers
    clf.ingest(
        [
            trig(FaultClass.COMPONENT_BORDERLINE, component_fru("flaky"))
            for _ in range(3)
        ]
    )
    # transient: single trigger
    clf.ingest([trig(FaultClass.COMPONENT_EXTERNAL, component_fru("once"))])
    by_name = {v.fru.name: v for v in clf.verdicts()}
    assert by_name["dead"].persistence is Persistence.PERMANENT
    assert by_name["flaky"].persistence is Persistence.INTERMITTENT
    assert by_name["once"].persistence is Persistence.TRANSIENT


def test_healthy_components_produce_no_verdicts():
    clf = Classifier()
    for i in range(50):
        clf.observe_component_epoch("c1", failed=False, now_us=i)
    assert clf.verdicts() == []


def test_detail_lists_ranked_weights():
    clf = Classifier()
    fru = component_fru("c1")
    clf.ingest(
        [
            trig(FaultClass.COMPONENT_INTERNAL, fru, confidence=0.9),
            trig(FaultClass.COMPONENT_EXTERNAL, fru, confidence=0.3),
        ]
    )
    detail = clf.verdicts()[0].detail
    assert detail.startswith("component-internal")
    assert "component-external" in detail


def test_secondary_verdict_for_strong_independent_evidence():
    """A component carrying two faults (say EMI victim + bad connector)
    receives a verdict for each class when both have strong evidence."""
    clf = Classifier()
    fru = component_fru("c1")
    clf.ingest(
        [
            trig(FaultClass.COMPONENT_EXTERNAL, fru, confidence=0.9),
            trig(FaultClass.COMPONENT_EXTERNAL, fru, confidence=0.9),
            trig(FaultClass.COMPONENT_BORDERLINE, fru, confidence=0.8),
            trig(FaultClass.COMPONENT_BORDERLINE, fru, confidence=0.8),
        ]
    )
    classes = {v.fault_class for v in clf.verdicts() if v.fru == fru}
    assert classes == {
        FaultClass.COMPONENT_EXTERNAL,
        FaultClass.COMPONENT_BORDERLINE,
    }


def test_weak_runner_up_not_emitted():
    clf = Classifier()
    fru = component_fru("c1")
    clf.ingest(
        [
            trig(FaultClass.COMPONENT_INTERNAL, fru, confidence=0.9),
            trig(FaultClass.COMPONENT_EXTERNAL, fru, confidence=0.3),
        ]
    )
    classes = [v.fault_class for v in clf.verdicts() if v.fru == fru]
    assert classes == [FaultClass.COMPONENT_INTERNAL]


def test_clear_forgets_fru():
    clf = Classifier()
    fru = component_fru("c1")
    clf.ingest([trig(FaultClass.COMPONENT_INTERNAL, fru, confidence=0.9)])
    for i in range(5):
        clf.observe_component_epoch("c1", failed=True, now_us=i)
    assert clf.verdicts()
    clf.clear(fru)
    assert clf.verdicts() == []
    assert not clf.alpha.count(str(fru)).has_triggered
