"""Unit + property tests for the alpha-count mechanism."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.alpha_count import AlphaCount, AlphaCountBank
from repro.errors import ConfigurationError


def test_failures_accumulate_and_trigger():
    ac = AlphaCount(decay=0.9, threshold=3.0)
    for _ in range(3):
        ac.observe(True, now_us=100)
    assert ac.score == pytest.approx(3.0)
    assert ac.triggered
    assert ac.first_crossing_at_us == 100
    assert ac.failures_seen == 3


def test_correct_observations_decay_score():
    ac = AlphaCount(decay=0.5, threshold=10.0)
    ac.observe(True)
    ac.observe(False)
    ac.observe(False)
    assert ac.score == pytest.approx(0.25)
    assert not ac.triggered


def test_sporadic_failures_never_trigger():
    """An isolated transient surrounded by long correct stretches decays
    away — the core discrimination property (§V-C)."""
    ac = AlphaCount(decay=0.9, threshold=3.0)
    for _ in range(5):
        ac.observe(True)
        for _ in range(50):
            ac.observe(False)
        assert not ac.triggered


def test_recurring_failures_trigger():
    ac = AlphaCount(decay=0.99, threshold=3.0)
    for _ in range(4):
        ac.observe(True)
        for _ in range(5):
            ac.observe(False)
    assert ac.triggered


def test_reset():
    ac = AlphaCount(threshold=1.0)
    ac.observe(True, 5)
    assert ac.triggered
    ac.reset()
    assert ac.score == 0.0
    assert ac.first_crossing_at_us is None


def test_validation():
    with pytest.raises(ConfigurationError):
        AlphaCount(decay=1.0)
    with pytest.raises(ConfigurationError):
        AlphaCount(decay=-0.1)
    with pytest.raises(ConfigurationError):
        AlphaCount(threshold=0.0)


def test_bank_tracks_independent_frus():
    bank = AlphaCountBank(decay=0.9, threshold=2.0)
    bank.observe("a", True)
    bank.observe("a", True)
    bank.observe("b", False)
    assert bank.triggered() == ["a"]
    assert bank.scores()["b"] == 0.0
    bank.reset("a")
    assert bank.triggered() == []
    bank.reset("never-seen")  # no-op


def test_bank_triggered_sorted_by_score():
    bank = AlphaCountBank(decay=0.9, threshold=1.0)
    bank.observe("low", True)
    for _ in range(3):
        bank.observe("high", True)
    assert bank.triggered() == ["high", "low"]


def test_bank_validates_params():
    with pytest.raises(ConfigurationError):
        AlphaCountBank(decay=2.0)


@given(st.lists(st.booleans(), max_size=200))
def test_property_score_bounded_by_failure_count(observations):
    ac = AlphaCount(decay=0.9, threshold=1e9)
    for failed in observations:
        ac.observe(failed)
    assert 0.0 <= ac.score <= sum(observations)
    assert ac.observations == len(observations)


@given(st.lists(st.booleans(), min_size=1, max_size=100))
def test_property_all_failures_gives_exact_count(observations):
    ac = AlphaCount(decay=0.5, threshold=1e9)
    for _ in observations:
        ac.observe(True)
    assert ac.score == pytest.approx(len(observations))


def test_peak_score_and_has_triggered_survive_decay():
    """A burst that crossed the threshold remains maintenance-relevant
    even after long quiet stretches decay the live score away."""
    ac = AlphaCount(decay=0.9, threshold=3.0)
    for _ in range(4):
        ac.observe(True, now_us=50)
    assert ac.triggered and ac.has_triggered
    for _ in range(200):
        ac.observe(False)
    assert not ac.triggered  # live score decayed
    assert ac.has_triggered  # evidence persists
    assert ac.peak_score == pytest.approx(4.0)
    ac.reset()
    assert not ac.has_triggered
    assert ac.peak_score == 0.0


def test_peak_never_below_score():
    ac = AlphaCount(decay=0.5, threshold=100.0)
    for failed in (True, False, True, True, False):
        ac.observe(failed)
        assert ac.peak_score >= ac.score
