"""Unit tests for each Out-of-Norm Assertion on hand-built windows."""

from __future__ import annotations

import pytest

from repro.core.fault_model import FaultClass
from repro.core.ona import (
    ConfigurationOna,
    ConnectorOna,
    CorrelatedJobFailureOna,
    IsolatedTransientOna,
    MassiveTransientOna,
    SingleJobOna,
    TimingOna,
    WearoutOna,
    default_onas,
)
from repro.core.symptoms import SymptomType

from tests.core.factory import ctx, sym


# -- MassiveTransientOna -------------------------------------------------------


def test_massive_transient_fires_on_close_simultaneous_corruption():
    window = [
        sym(type=SymptomType.CRC_ERROR, subject="comp1", point=100),
        sym(type=SymptomType.CRC_ERROR, subject="comp2", point=100),
        sym(type=SymptomType.CRC_ERROR, subject="comp3", point=101),
    ]
    triggers = MassiveTransientOna(radius=5.0).evaluate(ctx(window))
    assert {t.subject.name for t in triggers} == {"comp1", "comp2", "comp3"}
    assert all(t.fault_class is FaultClass.COMPONENT_EXTERNAL for t in triggers)


def test_massive_transient_needs_min_components():
    window = [sym(type=SymptomType.CRC_ERROR, subject="comp1", point=100)]
    assert MassiveTransientOna().evaluate(ctx(window)) == []


def test_massive_transient_requires_simultaneity():
    window = [
        sym(type=SymptomType.CRC_ERROR, subject="comp1", point=100),
        sym(type=SymptomType.CRC_ERROR, subject="comp2", point=200),
    ]
    assert MassiveTransientOna(delta_points=1).evaluate(ctx(window)) == []


def test_massive_transient_requires_spatial_proximity():
    window = [
        sym(type=SymptomType.CRC_ERROR, subject="comp1", point=100),
        sym(type=SymptomType.CRC_ERROR, subject="comp5", point=100),
    ]
    assert MassiveTransientOna(radius=1.5).evaluate(ctx(window)) == []


def test_massive_transient_fires_once_per_evidence():
    ona = MassiveTransientOna()
    window = [
        sym(type=SymptomType.CRC_ERROR, subject="comp1", point=100),
        sym(type=SymptomType.CRC_ERROR, subject="comp2", point=100),
    ]
    assert len(ona.evaluate(ctx(window))) == 2
    assert ona.evaluate(ctx(window)) == []  # same window: no re-fire


def test_massive_transient_ignores_job_level_symptoms():
    window = [
        sym(type=SymptomType.CRC_ERROR, subject="comp1", point=1, job="A1"),
        sym(type=SymptomType.CRC_ERROR, subject="comp2", point=1, job="C1"),
    ]
    assert MassiveTransientOna().evaluate(ctx(window)) == []


# -- ConnectorOna ---------------------------------------------------------------


def chan(subject, observer, point, channel=0):
    return sym(
        type=SymptomType.CHANNEL_OMISSION,
        subject=subject,
        observer=observer,
        point=point,
        channel=channel,
    )


def test_connector_tx_side_attribution():
    window = [chan("comp3", f"comp{1 + i % 2}", p) for i, p in enumerate((1, 50, 90, 200))]
    triggers = ConnectorOna(min_events=3).evaluate(ctx(window))
    assert len(triggers) == 1
    assert triggers[0].subject.name == "comp3"
    assert triggers[0].fault_class is FaultClass.COMPONENT_BORDERLINE
    assert "tx" in triggers[0].detail


def test_connector_rx_side_attribution():
    window = [chan(f"comp{1 + i % 2}", "comp4", p) for i, p in enumerate((1, 50, 90, 200))]
    triggers = ConnectorOna(min_events=3).evaluate(ctx(window))
    assert len(triggers) == 1
    assert triggers[0].subject.name == "comp4"
    assert "rx" in triggers[0].detail


def test_connector_hub_attribution_mixed_directions():
    # comp3 involved in every symptom, both as subject and observer.
    window = (
        [chan("comp3", f"comp{i}", p) for i, p in zip((1, 2, 4), (1, 2, 3))]
        + [chan(f"comp{i}", "comp3", p) for i, p in zip((1, 2, 4), (10, 11, 12))]
    )
    triggers = ConnectorOna(min_events=3).evaluate(ctx(window))
    assert len(triggers) == 1
    assert triggers[0].subject.name == "comp3"


def test_connector_loom_attribution():
    # All pairings affected: no hub.
    pairs = [("comp1", "comp2"), ("comp2", "comp3"), ("comp3", "comp4"),
             ("comp4", "comp5"), ("comp5", "comp1"), ("comp1", "comp4")]
    window = [chan(s, o, p) for p, (s, o) in enumerate(pairs)]
    triggers = ConnectorOna(min_events=3).evaluate(ctx(window))
    assert len(triggers) == 1
    assert triggers[0].subject.name == "loom-channel-0"
    assert "wiring" in triggers[0].detail


def test_connector_channels_independent():
    window = [chan("comp3", "comp1", p, channel=0) for p in (1, 2, 3)] + [
        chan("comp2", "comp1", p, channel=1) for p in (1, 2, 3)
    ]
    triggers = ConnectorOna(min_events=3).evaluate(ctx(window))
    assert len(triggers) == 2
    assert {t.subject.name for t in triggers} == {"comp3", "comp2"}


def test_connector_below_min_events_silent():
    window = [chan("comp3", "comp1", 1), chan("comp3", "comp2", 2)]
    assert ConnectorOna(min_events=3).evaluate(ctx(window)) == []


# -- WearoutOna -----------------------------------------------------------------


def test_wearout_fires_on_rising_episode_frequency():
    points = [0, 300, 500, 620, 700, 750, 780, 800]
    window = [sym(point=p, subject="comp2") for p in points]
    triggers = WearoutOna(min_episodes=6, trend_factor=2.0).evaluate(ctx(window))
    assert len(triggers) == 1
    assert triggers[0].subject.name == "comp2"
    assert triggers[0].fault_class is FaultClass.COMPONENT_INTERNAL


def test_wearout_ignores_constant_rate():
    window = [sym(point=p, subject="comp2") for p in range(0, 800, 100)]
    assert WearoutOna(min_episodes=6, trend_factor=2.0).evaluate(ctx(window)) == []


def test_wearout_merges_consecutive_points_into_episodes():
    # One long outage (consecutive points) is a single episode.
    window = [sym(point=p, subject="comp2") for p in range(100, 120)]
    assert WearoutOna(min_episodes=2).evaluate(ctx(window)) == []


def test_wearout_refires_as_evidence_grows():
    ona = WearoutOna(min_episodes=4, trend_factor=1.5)
    points = [0, 400, 600, 700]
    w1 = [sym(point=p, subject="comp2") for p in points]
    assert len(ona.evaluate(ctx(w1))) == 1
    assert ona.evaluate(ctx(w1)) == []
    w2 = w1 + [sym(point=750, subject="comp2")]
    assert len(ona.evaluate(ctx(w2))) == 1


# -- CorrelatedJobFailureOna ---------------------------------------------------


def test_correlated_jobs_across_dases_indicate_component_internal():
    window = [
        sym(type=SymptomType.OMISSION, subject="comp2", job="A3", point=100),
        sym(type=SymptomType.OMISSION, subject="comp2", job="C1", point=100),
        sym(type=SymptomType.REPLICA_DEVIATION, subject="comp2", job="S2", point=101),
    ]
    triggers = CorrelatedJobFailureOna().evaluate(ctx(window))
    assert len(triggers) >= 1
    assert triggers[0].subject.name == "comp2"
    assert triggers[0].fault_class is FaultClass.COMPONENT_INTERNAL


def test_jobs_of_same_das_do_not_correlate():
    window = [
        sym(type=SymptomType.OMISSION, subject="comp2", job="C1", point=100),
        sym(type=SymptomType.OMISSION, subject="comp2", job="C2", point=100),
    ]
    assert CorrelatedJobFailureOna(min_dases=2).evaluate(ctx(window)) == []


def test_jobs_on_different_components_do_not_correlate():
    window = [
        sym(type=SymptomType.OMISSION, subject="comp1", job="A1", point=100),
        sym(type=SymptomType.OMISSION, subject="comp3", job="B2", point=100),
    ]
    assert CorrelatedJobFailureOna().evaluate(ctx(window)) == []


# -- SingleJobOna -----------------------------------------------------------------


def test_single_job_value_violations_software():
    window = [
        sym(type=SymptomType.VALUE_VIOLATION, subject="comp3", job="A2", point=p)
        for p in (1, 2, 3)
    ]
    triggers = SingleJobOna(min_events=2).evaluate(ctx(window))
    assert len(triggers) == 1
    assert triggers[0].subject.name == "A2"
    assert triggers[0].fault_class is FaultClass.JOB_INHERENT_SOFTWARE


def test_single_job_with_sensor_flag_is_transducer():
    window = [
        sym(type=SymptomType.VALUE_VIOLATION, subject="comp2", job="C1", point=1),
        sym(type=SymptomType.VALUE_VIOLATION, subject="comp2", job="C1", point=2),
        sym(type=SymptomType.SENSOR_IMPLAUSIBLE, subject="comp2", job="C1", point=2),
    ]
    triggers = SingleJobOna(min_events=2).evaluate(ctx(window))
    assert triggers[0].fault_class is FaultClass.JOB_INHERENT_TRANSDUCER


def test_sensor_implausibility_alone_sufficient():
    window = [
        sym(type=SymptomType.SENSOR_IMPLAUSIBLE, subject="comp2", job="C1", point=p)
        for p in (1, 2, 3)
    ]
    triggers = SingleJobOna(min_events=2).evaluate(ctx(window))
    assert len(triggers) == 1
    assert triggers[0].fault_class is FaultClass.JOB_INHERENT_TRANSDUCER


def test_single_job_suppressed_by_component_failure_evidence():
    window = [
        sym(type=SymptomType.VALUE_VIOLATION, subject="comp2", job="C1", point=p)
        for p in (1, 2)
    ] + [sym(type=SymptomType.OMISSION, subject="comp2", point=1)]
    assert SingleJobOna(min_events=2).evaluate(ctx(window)) == []


def test_single_job_suppressed_by_sibling_job_failures():
    window = [
        sym(type=SymptomType.VALUE_VIOLATION, subject="comp2", job="C1", point=p)
        for p in (1, 2)
    ] + [
        sym(type=SymptomType.VALUE_VIOLATION, subject="comp2", job="A3", point=p)
        for p in (1, 2)
    ]
    assert SingleJobOna(min_events=2).evaluate(ctx(window)) == []


def test_single_job_omissions_with_budget_explanation_suppressed():
    window = [
        sym(type=SymptomType.OMISSION, subject="comp2", job="C2", point=p)
        for p in (1, 2, 3)
    ] + [
        sym(type=SymptomType.VN_BUDGET_OVERFLOW, subject="comp2", job="C1", point=2)
    ]
    assert SingleJobOna(min_events=2).evaluate(ctx(window)) == []


# -- IsolatedTransientOna --------------------------------------------------------


def test_isolated_transient_after_quiet_period():
    window = [sym(type=SymptomType.CRC_ERROR, subject="comp3", point=100)]
    triggers = IsolatedTransientOna(quiet_points=50).evaluate(
        ctx(window, now_point=200)
    )
    assert len(triggers) == 1
    assert triggers[0].fault_class is FaultClass.COMPONENT_EXTERNAL
    assert triggers[0].subject.name == "comp3"


def test_isolated_transient_waits_for_quiet():
    window = [sym(type=SymptomType.CRC_ERROR, subject="comp3", point=100)]
    assert (
        IsolatedTransientOna(quiet_points=50).evaluate(ctx(window, now_point=120))
        == []
    )


def test_recurring_failures_not_isolated():
    window = [
        sym(type=SymptomType.OMISSION, subject="comp3", point=p)
        for p in (100, 300, 500)
    ]
    assert (
        IsolatedTransientOna(quiet_points=50).evaluate(ctx(window, now_point=900))
        == []
    )


# -- ConfigurationOna -------------------------------------------------------------


def test_configuration_fires_on_overflows():
    window = [
        sym(type=SymptomType.QUEUE_OVERFLOW, subject="comp2", job="A3", point=p)
        for p in (1, 2, 3)
    ]
    triggers = ConfigurationOna(min_events=2).evaluate(ctx(window))
    assert len(triggers) == 1
    assert triggers[0].subject.name == "A3"
    assert triggers[0].fault_class is FaultClass.JOB_BORDERLINE


def test_configuration_suppressed_when_producer_violates_spec():
    window = [
        sym(type=SymptomType.QUEUE_OVERFLOW, subject="comp2", job="A3", point=p)
        for p in (1, 2)
    ] + [
        sym(type=SymptomType.VALUE_VIOLATION, subject="comp2", job="A3", point=1)
    ]
    assert ConfigurationOna(min_events=2).evaluate(ctx(window)) == []


# -- TimingOna ---------------------------------------------------------------------


def test_timing_fires_on_persistent_violations():
    window = [
        sym(type=SymptomType.TIMING_VIOLATION, subject="comp1", point=p, magnitude=80.0)
        for p in (1, 2, 3)
    ]
    triggers = TimingOna(min_events=3).evaluate(ctx(window))
    assert len(triggers) == 1
    assert triggers[0].subject.name == "comp1"
    assert triggers[0].fault_class is FaultClass.COMPONENT_INTERNAL


def test_timing_counts_guardian_blocks():
    window = [
        sym(type=SymptomType.GUARDIAN_BLOCK, subject="comp4", point=p)
        for p in (1, 2, 3)
    ]
    assert len(TimingOna(min_events=3).evaluate(ctx(window))) == 1


# -- battery ------------------------------------------------------------------------


def test_default_battery_composition():
    names = {type(o).__name__ for o in default_onas()}
    assert names == {
        "MassiveTransientOna",
        "ConnectorOna",
        "WearoutOna",
        "CorrelatedJobFailureOna",
        "SingleJobOna",
        "IsolatedTransientOna",
        "ConfigurationOna",
        "TimingOna",
    }


def test_empty_window_fires_nothing():
    for ona in default_onas():
        assert ona.evaluate(ctx([])) == []


def test_massive_transient_requires_burst_coherence():
    """A continuously dead component plus a coincidental single-point
    victim must NOT be grouped into an external burst (their failure
    spans differ wildly)."""
    dead = [
        sym(type=SymptomType.OMISSION, subject="comp2", point=p)
        for p in range(100, 400)
    ]
    victim = [sym(type=SymptomType.OMISSION, subject="comp3", point=250)]
    ona = MassiveTransientOna(coherence_points=50)
    assert ona.evaluate(ctx(dead + victim)) == []


def test_massive_transient_coherent_burst_still_fires():
    burst = [
        sym(type=SymptomType.CRC_ERROR, subject=s, point=p)
        for s in ("comp1", "comp2")
        for p in (100, 101, 102)
    ]
    triggers = MassiveTransientOna(coherence_points=50).evaluate(ctx(burst))
    assert {t.subject.name for t in triggers} == {"comp1", "comp2"}
