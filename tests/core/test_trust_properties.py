"""Property-based tests for trust levels (§II-D, Fig. 9).

Complements ``tests/test_properties.py``'s bounds checks with the
monotonicity contract under *repeated identical evidence*: a constant
stream of violations drives trust monotonically down to the floor, a
constant conforming stream drives it monotonically up to 1.0, and the
``suspicious`` flag follows the 0.5 threshold without oscillating under
either constant stream.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.trust import TrustBank, TrustLevel

weights = st.floats(min_value=0.01, max_value=5.0)
epochs = st.integers(min_value=1, max_value=200)


@given(weights, epochs)
def test_repeated_violations_monotone_down_to_floor(weight, n):
    level = TrustLevel(demerit=0.7, recovery=0.02, floor=0.01)
    previous = level.value
    for t in range(n):
        value = level.update(weight, t)
        assert value <= previous + 1e-12
        assert value >= level.floor - 1e-12
        previous = value


@given(epochs)
def test_repeated_conformance_monotone_up_to_one(n):
    level = TrustLevel(demerit=0.7, recovery=0.05, floor=0.01)
    level.value = 0.1  # start distrusted
    previous = level.value
    for t in range(n):
        value = level.update(0.0, t)
        assert previous - 1e-12 <= value <= 1.0
        previous = value


@given(weights, epochs)
def test_suspicious_flag_never_oscillates_under_constant_evidence(weight, n):
    level = TrustLevel()
    suspicious_seen = False
    for t in range(n):
        level.update(weight, t)
        if suspicious_seen:
            assert level.suspicious, (
                "suspicious flag recovered under unbroken violations"
            )
        suspicious_seen = suspicious_seen or level.suspicious


@given(
    st.lists(st.floats(min_value=0.0, max_value=3.0), max_size=80),
    weights,
)
def test_trajectory_records_every_epoch(history, weight):
    level = TrustLevel()
    for t, w in enumerate(history):
        level.update(w, t)
    assert len(level.trajectory) == len(history)
    assert [t for t, _ in level.trajectory] == list(range(len(history)))
    assert all(0.0 < v <= 1.0 for _, v in level.trajectory)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["fru-a", "fru-b", "fru-c"]),
            st.floats(min_value=0.0, max_value=2.0),
        ),
        max_size=100,
    )
)
def test_bank_suspicious_sorted_most_distrusted_first(stream):
    bank = TrustBank()
    for t, (fru, weight) in enumerate(stream):
        bank.update(fru, weight, t)
    flagged = bank.suspicious()
    values = bank.values()
    assert flagged == sorted(
        (f for f, v in values.items() if v < 0.5), key=lambda f: values[f]
    )
