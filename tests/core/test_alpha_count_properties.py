"""Property-based tests for the alpha-count heuristic (§V-C).

The maintenance-relevant guarantees, checked over arbitrary observation
sequences:

* the score is bounded by the failures seen and never negative;
* ``has_triggered`` is monotone — the discrimination flag never
  oscillates back to False, however the symptom batches are ordered;
* fewer failures than the threshold can never trigger, in any order;
* reordering a batch of observations never changes whether the count
  *eventually* trips when the failures all arrive (permutation safety
  for the all-failures case the paper's recurring faults produce).
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.alpha_count import AlphaCount, AlphaCountBank

observations = st.lists(st.booleans(), max_size=200)
decays = st.floats(min_value=0.0, max_value=0.99)
thresholds = st.floats(min_value=0.5, max_value=20.0)


@given(observations, decays, thresholds)
def test_score_bounded_by_failures_seen(seq, decay, threshold):
    ac = AlphaCount(decay=decay, threshold=threshold)
    for failed in seq:
        score = ac.observe(failed)
        assert 0.0 <= score <= ac.failures_seen
        assert score <= ac.peak_score
    assert ac.observations == len(seq)
    assert ac.failures_seen == sum(seq)


@given(observations, decays, thresholds)
def test_has_triggered_never_oscillates(seq, decay, threshold):
    """Once the threshold is crossed the flag stays up for good."""
    ac = AlphaCount(decay=decay, threshold=threshold)
    tripped = False
    for failed in seq:
        ac.observe(failed)
        if tripped:
            assert ac.has_triggered, "discrimination flag oscillated"
        tripped = tripped or ac.has_triggered


@given(observations.filter(lambda s: sum(s) < 3), decays)
def test_below_threshold_failure_count_cannot_trigger(seq, decay):
    """< threshold failures can never trip, whatever their order."""
    ac = AlphaCount(decay=decay, threshold=3.0)
    for failed in seq:
        ac.observe(failed)
        assert not ac.has_triggered


@given(
    st.lists(st.booleans(), min_size=1, max_size=60),
    st.randoms(use_true_random=False),
    decays,
    thresholds,
)
def test_reordered_batches_trip_consistently_on_all_failures(
    seq, rng, decay, threshold
):
    """Trailing all-failure runs are permutation-robust.

    Decay interleavings make the *instantaneous* score order-dependent
    by design; the discrimination signal must still be stable: appending
    ``ceil(threshold)`` consecutive failures trips the count regardless
    of how the preceding batch was ordered (score is never negative, so
    k >= threshold increments alone reach it).
    """
    import math

    shuffled = list(seq)
    rng.shuffle(shuffled)
    tail = [True] * math.ceil(threshold)
    for ordering in (seq + tail, shuffled + tail):
        ac = AlphaCount(decay=decay, threshold=threshold)
        for failed in ordering:
            ac.observe(failed)
        assert ac.has_triggered


@given(observations, decays, thresholds)
def test_reset_clears_all_evidence(seq, decay, threshold):
    ac = AlphaCount(decay=decay, threshold=threshold)
    for failed in seq:
        ac.observe(failed)
    ac.reset()
    assert ac.score == 0.0
    assert not ac.triggered and not ac.has_triggered
    assert ac.first_crossing_at_us is None


@given(
    st.lists(
        st.tuples(st.sampled_from(["fru-a", "fru-b", "fru-c"]), st.booleans()),
        max_size=120,
    )
)
def test_bank_isolates_frus_and_matches_standalone_counts(stream):
    """The bank's per-FRU counts equal independently fed AlphaCounts."""
    bank = AlphaCountBank(decay=0.9, threshold=3.0)
    standalone: dict[str, AlphaCount] = {}
    for fru, failed in stream:
        bank.observe(fru, failed)
        standalone.setdefault(
            fru, AlphaCount(decay=0.9, threshold=3.0)
        ).observe(failed)
    for fru, expected in standalone.items():
        assert bank.count(fru).score == expected.score
        assert bank.count(fru).has_triggered == expected.has_triggered
    assert bank.triggered() == sorted(
        (f for f, ac in standalone.items() if ac.triggered),
        key=lambda f: -standalone[f].score,
    )
