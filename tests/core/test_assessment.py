"""Unit tests for the assessment pipeline."""

from __future__ import annotations

import pytest

from repro.core.assessment import DiagnosticAssessment
from repro.core.fault_model import FaultClass, component_fru
from repro.core.maintenance import MaintenanceAction
from repro.core.symptoms import SymptomType

from tests.core.factory import TIME_BASE, sym, topology


def make_assessment(**kwargs):
    return DiagnosticAssessment(topology(), TIME_BASE, **kwargs)


def test_submit_deduplicates_multi_observer_reports():
    assessment = make_assessment()
    duplicates = [
        sym(point=5, observer=f"comp{i}") for i in (1, 3, 4)
    ]
    accepted = assessment.submit(duplicates)
    assert accepted == 1
    assert assessment.symptoms_total == 3
    assert assessment.symptoms_deduplicated == 2


def test_epoch_counts_new_symptoms():
    assessment = make_assessment()
    assessment.submit([sym(point=1), sym(point=2)])
    result = assessment.run_epoch(now_us=3_000)
    assert result.new_symptoms == 2
    result = assessment.run_epoch(now_us=4_000)
    assert result.new_symptoms == 0


def test_window_pruning_forgets_old_symptoms():
    assessment = make_assessment(window_points=100)
    assessment.submit([sym(point=1)])
    assessment.run_epoch(now_us=2_000)
    assert len(assessment._window) == 1
    assessment.run_epoch(now_us=500_000)  # point 500 >> window
    assert len(assessment._window) == 0
    # the same key may legitimately reappear much later
    assert assessment.submit([sym(point=1)]) == 1


def test_correlated_epoch_produces_internal_verdict_and_low_trust():
    assessment = make_assessment()
    window = [
        sym(type=SymptomType.OMISSION, subject="comp2", job="A3", point=10),
        sym(type=SymptomType.OMISSION, subject="comp2", job="C1", point=10),
        sym(type=SymptomType.OMISSION, subject="comp2", job="S2", point=10),
    ]
    assessment.submit(window)
    result = assessment.run_epoch(now_us=11_000)
    assert any(
        t.fault_class is FaultClass.COMPONENT_INTERNAL for t in result.triggers
    )
    trust = assessment.trust.values()
    assert trust["component:comp2"] < 1.0
    assert trust["component:comp1"] == 1.0


def test_external_triggers_do_not_demerit_trust():
    assessment = make_assessment()
    burst = [
        sym(type=SymptomType.CRC_ERROR, subject=s, point=10)
        for s in ("comp1", "comp2", "comp3")
    ]
    assessment.submit(burst)
    result = assessment.run_epoch(now_us=11_000)
    assert any(
        t.fault_class is FaultClass.COMPONENT_EXTERNAL for t in result.triggers
    )
    assert all(v == 1.0 for v in assessment.trust.values().values())


def test_unexplained_component_failure_demerits_trust():
    assessment = make_assessment()
    assessment.submit([sym(type=SymptomType.OMISSION, subject="comp3", point=10)])
    assessment.run_epoch(now_us=11_000)
    assert assessment.trust.values()["component:comp3"] < 1.0


def test_trust_recovers_over_quiet_epochs():
    assessment = make_assessment()
    assessment.submit([sym(type=SymptomType.OMISSION, subject="comp3", point=10)])
    assessment.run_epoch(now_us=11_000)
    low = assessment.trust.values()["component:comp3"]
    for i in range(20):
        assessment.run_epoch(now_us=20_000 + i * 1_000)
    assert assessment.trust.values()["component:comp3"] > low


def test_health_reports_include_all_components():
    assessment = make_assessment()
    reports = assessment.health_reports()
    names = {r.fru.name for r in reports}
    assert names == {f"comp{i}" for i in range(1, 6)}
    assert all(r.verdict is None for r in reports)


def test_health_report_with_recommendation():
    assessment = make_assessment()
    assessment.submit(
        [
            sym(type=SymptomType.VALUE_VIOLATION, subject="comp3", job="A2", point=p)
            for p in (1, 2, 3)
        ]
    )
    assessment.run_epoch(now_us=10_000)
    reports = {r.fru.name: r for r in assessment.health_reports()}
    job_report = reports["A2"]
    assert job_report.verdict.fault_class is FaultClass.JOB_INHERENT_SOFTWARE
    assert job_report.recommendation.action is MaintenanceAction.FORWARD_TO_OEM
    # with an update released, the action flips
    reports2 = {
        r.fru.name: r
        for r in assessment.health_reports(
            software_updates_available=frozenset({"A2"})
        )
    }
    assert (
        reports2["A2"].recommendation.action is MaintenanceAction.UPDATE_SOFTWARE
    )


def test_epochs_run_counter():
    assessment = make_assessment()
    assessment.run_epoch(1_000)
    assessment.run_epoch(2_000)
    assert assessment.epochs_run == 2
