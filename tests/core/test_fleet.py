"""Unit tests for fleet analysis (20-80 rule)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fleet import (
    analyse_fleet,
    identification_quality,
    pareto_rates,
    synthesize_fleet,
)
from repro.errors import AnalysisError


def test_pareto_rates_shape():
    rates, hot = pareto_rates(20, total_rate=1.0)
    assert rates.shape == (20,)
    assert hot.sum() == 4  # 20% of 20
    assert rates.sum() == pytest.approx(1.0)
    assert rates[hot].sum() == pytest.approx(0.8)


def test_pareto_rates_validation():
    with pytest.raises(AnalysisError):
        pareto_rates(1, 1.0)
    with pytest.raises(AnalysisError):
        pareto_rates(10, 1.0, hot_fraction=0.0)
    with pytest.raises(AnalysisError):
        pareto_rates(10, 1.0, hot_share=1.0)


def test_synthesize_fleet_structure():
    rng = np.random.default_rng(0)
    report = synthesize_fleet(rng, n_vehicles=500, n_job_types=10)
    assert report.counts.shape == (500, 10)
    assert report.n_vehicles == 500
    assert len(report.hot_types) == 2
    with pytest.raises(AnalysisError):
        synthesize_fleet(rng, 0)


def test_large_fleet_recovers_hot_modules():
    rng = np.random.default_rng(1)
    report = synthesize_fleet(
        rng, n_vehicles=20_000, n_job_types=20, mean_failures_per_vehicle=1.0
    )
    analysis = analyse_fleet(report)
    quality = identification_quality(report, analysis)
    assert quality["recall"] >= 0.75
    assert quality["precision"] >= 0.5
    # the identified minority of modules covers the majority of failures
    assert analysis.hot_module_fraction <= 0.4
    assert analysis.hot_failure_share >= 0.8


def test_small_fleet_identification_degrades():
    """Averaged over seeds, a large fleet identifies the hot modules at
    least as well as a tiny one (the paper's 'representative population'
    requirement)."""
    f1_big, f1_small = [], []
    for seed in range(8):
        rng = np.random.default_rng(seed)
        big = synthesize_fleet(rng, 10_000, 20, 1.0)
        small = synthesize_fleet(rng, 15, 20, 1.0)
        f1_big.append(identification_quality(big, analyse_fleet(big))["f1"])
        f1_small.append(
            identification_quality(small, analyse_fleet(small))["f1"]
        )
    assert np.mean(f1_big) >= np.mean(f1_small)


def test_analysis_cumulative_monotone():
    rng = np.random.default_rng(3)
    report = synthesize_fleet(rng, 1000, 15, 1.0)
    analysis = analyse_fleet(report)
    assert np.all(np.diff(analysis.cumulative) >= -1e-12)
    assert analysis.cumulative[-1] == pytest.approx(1.0)
    assert len(analysis.job_types) == 15


def test_empty_fleet_rejected():
    rng = np.random.default_rng(4)
    report = synthesize_fleet(rng, 5, 10, mean_failures_per_vehicle=1e-9)
    if report.totals().sum() == 0:
        with pytest.raises(AnalysisError):
            analyse_fleet(report)
