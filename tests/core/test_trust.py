"""Unit tests for trust levels (Fig. 9)."""

from __future__ import annotations

import pytest

from repro.core.trust import TrustBank, TrustLevel
from repro.errors import ConfigurationError


def test_starts_fully_trusted():
    lvl = TrustLevel()
    assert lvl.value == 1.0
    assert not lvl.suspicious


def test_evidence_lowers_trust_monotonically():
    lvl = TrustLevel(demerit=0.5)
    v1 = lvl.update(1.0, 10)
    v2 = lvl.update(1.0, 20)
    assert v1 == pytest.approx(0.5)
    assert v2 == pytest.approx(0.25)
    assert lvl.suspicious


def test_heavier_evidence_hits_harder():
    a, b = TrustLevel(), TrustLevel()
    a.update(1.0, 0)
    b.update(3.0, 0)
    assert b.value < a.value


def test_conforming_epochs_recover_slowly():
    lvl = TrustLevel(demerit=0.5, recovery=0.1)
    lvl.update(2.0, 0)
    low = lvl.value
    for t in range(1, 30):
        lvl.update(0.0, t)
    assert low < lvl.value < 1.0


def test_floor_holds():
    lvl = TrustLevel(demerit=0.1, floor=0.05)
    for t in range(10):
        lvl.update(5.0, t)
    assert lvl.value == pytest.approx(0.05)


def test_trajectory_recorded():
    lvl = TrustLevel()
    lvl.update(1.0, 100)
    lvl.update(0.0, 200)
    assert [t for t, _ in lvl.trajectory] == [100, 200]
    assert lvl.epochs == 2


def test_reset():
    lvl = TrustLevel()
    lvl.update(5.0, 0)
    lvl.reset()
    assert lvl.value == 1.0


def test_validation():
    with pytest.raises(ConfigurationError):
        TrustLevel(demerit=1.0)
    with pytest.raises(ConfigurationError):
        TrustLevel(recovery=1.0)
    with pytest.raises(ConfigurationError):
        TrustLevel(floor=0.0)
    lvl = TrustLevel()
    with pytest.raises(ConfigurationError):
        lvl.update(-1.0, 0)


def test_bank_suspicious_ordering():
    bank = TrustBank(demerit=0.5)
    bank.update("bad", 3.0, 0)
    bank.update("worse", 6.0, 0)
    bank.update("good", 0.0, 0)
    assert bank.suspicious() == ["worse", "bad"]
    assert bank.values()["good"] == 1.0
    assert bank.trajectory("bad")
