"""Unit tests for condition-based maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cbm import (
    CbmRecommendation,
    ConditionMonitor,
    episodes_from_trace,
)
from repro.errors import AnalysisError
from repro.faults.injector import FaultInjector
from repro.presets import small_cluster
from repro.units import ms, seconds


def accelerating_times(n=20, start_gap=2.0, factor=0.82):
    """Episode times with geometrically shrinking gaps (wearout)."""
    t, gap, out = 0.0, start_gap, []
    for _ in range(n):
        t += gap
        gap *= factor
        out.append(int(t * 1e6))
    return out


def uniform_times(n=20, gap=1.0):
    return [int((i + 1) * gap * 1e6) for i in range(n)]


def test_insufficient_evidence_continues():
    monitor = ConditionMonitor(min_episodes=6)
    a = monitor.assess("c1", [1_000_000, 2_000_000], seconds(10))
    assert a.recommendation is CbmRecommendation.CONTINUE
    assert a.remaining_useful_life_s is None


def test_uniform_rate_continues():
    monitor = ConditionMonitor()
    a = monitor.assess("c1", uniform_times(), seconds(30))
    assert a.rate_trend < 1.5
    assert a.recommendation in (
        CbmRecommendation.CONTINUE,
        CbmRecommendation.MONITOR,
    )


def test_accelerating_rate_plans_replacement():
    monitor = ConditionMonitor(rate_limit_per_s=50.0)
    times = accelerating_times()
    a = monitor.assess("c1", times, times[-1] + seconds(1))
    assert a.rate_trend >= 2.0
    assert a.recommendation is CbmRecommendation.PLAN_REPLACEMENT
    assert a.remaining_useful_life_s is not None
    assert a.remaining_useful_life_s > 0
    assert a.predicted_rate_per_s > a.current_rate_per_s


def test_end_of_life_replaces_now():
    monitor = ConditionMonitor(rate_limit_per_s=0.5)
    times = accelerating_times()
    a = monitor.assess("c1", times, times[-1] + seconds(1))
    assert a.current_rate_per_s >= 0.5
    assert a.recommendation is CbmRecommendation.REPLACE_NOW
    assert a.remaining_useful_life_s == 0.0


def test_parameter_validation():
    with pytest.raises(AnalysisError):
        ConditionMonitor(rate_limit_per_s=0.0)
    with pytest.raises(AnalysisError):
        ConditionMonitor(trend_threshold=1.0)
    with pytest.raises(AnalysisError):
        ConditionMonitor(min_episodes=1)


def test_episodes_from_trace_merges_outage_slots():
    cluster = small_cluster(4, seed=71)
    injector = FaultInjector(cluster)
    injector.inject_transient_internal("c1", ms(100), duration_us=ms(30))
    injector.inject_transient_internal("c1", ms(500), duration_us=ms(30))
    cluster.run(seconds(1))
    episodes = episodes_from_trace(cluster, "c1")
    assert len(episodes) == 2
    assert episodes_from_trace(cluster, "c2") == []


def test_cbm_end_to_end_on_wearout():
    cluster = small_cluster(4, seed=72)
    injector = FaultInjector(cluster)
    injector.inject_wearout(
        "c1",
        onset_us=ms(200),
        full_us=seconds(9),
        horizon_us=seconds(10),
        base_fit=8e11,
        multiplier=30,
        duration_us=ms(8),
    )
    cluster.run(seconds(10))
    episodes = episodes_from_trace(cluster, "c1")
    monitor = ConditionMonitor(rate_limit_per_s=50.0, min_episodes=5)
    assessment = monitor.assess("c1", episodes, cluster.now)
    assert assessment.episode_count >= 5
    assert assessment.recommendation in (
        CbmRecommendation.PLAN_REPLACEMENT,
        CbmRecommendation.MONITOR,
        CbmRecommendation.REPLACE_NOW,
    )
