"""Unit tests for fault patterns and signature measurement (Fig. 8)."""

from __future__ import annotations

import pytest

from repro.core.fault_model import FaultClass
from repro.core.patterns import (
    CONNECTOR_PATTERN,
    FIG8_PATTERNS,
    MASSIVE_TRANSIENT_PATTERN,
    WEAROUT_PATTERN,
    classify_signature,
    compress_episodes,
    hub_component,
    measure_signature,
    split_by_subject,
)
from repro.core.symptoms import SymptomType

from tests.core.factory import sym


def test_fig8_pattern_table_complete():
    assert len(FIG8_PATTERNS) == 3
    assert WEAROUT_PATTERN.indicates is FaultClass.COMPONENT_INTERNAL
    assert MASSIVE_TRANSIENT_PATTERN.indicates is FaultClass.COMPONENT_EXTERNAL
    assert CONNECTOR_PATTERN.indicates is FaultClass.COMPONENT_BORDERLINE


def test_empty_signature():
    sig = measure_signature([])
    assert sig.n_symptoms == 0
    assert sig.dominant_type is None
    assert classify_signature(sig) is None


def wearout_symptoms():
    # Episodes at accelerating cadence on one component.
    points = [0, 100, 180, 240, 280, 300, 310, 315]
    return [sym(point=p, subject="comp2") for p in points]


def massive_symptoms():
    return [
        sym(type=SymptomType.CRC_ERROR, subject=f"comp{i}", point=500, magnitude=4)
        for i in (1, 2, 3)
    ] + [
        sym(type=SymptomType.CRC_ERROR, subject="comp1", point=501, magnitude=3)
    ]


def connector_symptoms():
    return [
        sym(
            type=SymptomType.CHANNEL_OMISSION,
            subject="comp3",
            point=p,
            channel=0,
            observer=f"comp{1 + (p % 2)}",
        )
        for p in (10, 220, 430, 610, 800)
    ]


def test_wearout_signature_measured():
    sig = measure_signature(wearout_symptoms())
    assert sig.n_components == 1
    assert sig.frequency_trend > 1.5
    assert classify_signature(sig) is WEAROUT_PATTERN


def test_massive_transient_signature_measured():
    sig = measure_signature(massive_symptoms())
    assert sig.n_components == 3
    assert sig.simultaneity >= 0.6
    assert sig.dominant_type is SymptomType.CRC_ERROR
    assert sig.mean_magnitude > 1.0
    assert classify_signature(sig) is MASSIVE_TRANSIENT_PATTERN


def test_connector_signature_measured():
    sig = measure_signature(connector_symptoms())
    assert sig.n_components == 1
    assert sig.n_channels == 1
    assert classify_signature(sig) is CONNECTOR_PATTERN


def test_value_trend_detects_drift():
    symptoms = [
        sym(
            type=SymptomType.VALUE_MARGINAL,
            subject="comp2",
            job="C1",
            point=p,
            magnitude=float(p) / 100.0,
        )
        for p in range(0, 500, 50)
    ]
    sig = measure_signature(symptoms)
    assert sig.value_trend > 0.9


def test_split_by_subject():
    groups = split_by_subject(massive_symptoms())
    assert set(groups) == {"comp1", "comp2", "comp3"}
    assert len(groups["comp1"]) == 2


def test_single_point_signature_degenerate():
    sig = measure_signature([sym(point=5), sym(point=5, subject="comp2")])
    assert sig.lattice_spread == 0
    assert sig.simultaneity == 1.0
    assert sig.frequency_trend == 1.0


# -- episode compression and hub involvement -----------------------------------


def test_compress_episodes_merges_adjacent_points():
    symptoms = [sym(point=p, subject="comp2") for p in (1, 2, 3, 10, 11, 30)]
    compressed = compress_episodes(symptoms)
    assert [s.lattice_point for s in compressed] == [1, 10, 30]


def test_compress_episodes_gap_parameter():
    # Outage points spaced by the component's round period (5).
    symptoms = [sym(point=p, subject="comp2") for p in (0, 5, 10, 100, 105)]
    assert len(compress_episodes(symptoms, gap_points=1)) == 5
    assert [s.lattice_point for s in compress_episodes(symptoms, gap_points=5)] == [0, 100]


def test_compress_episodes_streams_independent():
    symptoms = [
        sym(point=1, subject="comp1"),
        sym(point=2, subject="comp2"),
        sym(point=2, subject="comp1", type=SymptomType.CRC_ERROR),
    ]
    assert len(compress_episodes(symptoms)) == 3


def test_hub_component_full_involvement():
    symptoms = [
        sym(type=SymptomType.CHANNEL_OMISSION, subject="comp3", observer="comp1", point=1, channel=0),
        sym(type=SymptomType.CHANNEL_OMISSION, subject="comp2", observer="comp3", point=2, channel=0),
    ]
    hub, share = hub_component(symptoms)
    assert hub == "comp3"
    assert share == 1.0


def test_hub_component_empty():
    assert hub_component([]) == (None, 0.0)
