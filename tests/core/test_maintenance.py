"""Unit tests for maintenance-action determination (Fig. 11) and costs."""

from __future__ import annotations

import pytest

from repro.core.classification import Verdict
from repro.core.fault_model import (
    FaultClass,
    Persistence,
    component_fru,
    job_fru,
)
from repro.core.maintenance import (
    ACTION_FOR_CLASS,
    CostModel,
    MaintenanceAction,
    determine_action,
)


def verdict(fault_class, fru=None):
    fru = fru or (
        component_fru("c1")
        if fault_class.is_component_level or fault_class is FaultClass.JOB_EXTERNAL
        else job_fru("j1")
    )
    return Verdict(
        fru=fru,
        fault_class=fault_class,
        confidence=0.9,
        evidence=3,
        persistence=Persistence.INTERMITTENT,
    )


def test_fig11_action_table():
    cases = {
        FaultClass.COMPONENT_EXTERNAL: MaintenanceAction.NO_ACTION,
        FaultClass.COMPONENT_BORDERLINE: MaintenanceAction.INSPECT_CONNECTOR,
        FaultClass.COMPONENT_INTERNAL: MaintenanceAction.REPLACE_COMPONENT,
        FaultClass.JOB_EXTERNAL: MaintenanceAction.REPLACE_COMPONENT,
        FaultClass.JOB_BORDERLINE: MaintenanceAction.UPDATE_CONFIGURATION,
        FaultClass.JOB_INHERENT_TRANSDUCER: MaintenanceAction.INSPECT_TRANSDUCER,
    }
    for fault_class, expected in cases.items():
        rec = determine_action(verdict(fault_class))
        assert rec.action is expected, fault_class


def test_software_action_depends_on_update_availability():
    v = verdict(FaultClass.JOB_INHERENT_SOFTWARE)
    assert (
        determine_action(v, software_update_available=False).action
        is MaintenanceAction.FORWARD_TO_OEM
    )
    assert (
        determine_action(v, software_update_available=True).action
        is MaintenanceAction.UPDATE_SOFTWARE
    )


def test_action_table_covers_all_non_software_classes():
    for fc in FaultClass:
        if fc is FaultClass.JOB_INHERENT_SOFTWARE:
            assert fc not in ACTION_FOR_CLASS
        else:
            assert fc in ACTION_FOR_CLASS


def test_removes_fru_flag():
    assert determine_action(verdict(FaultClass.COMPONENT_INTERNAL)).removes_fru
    assert not determine_action(verdict(FaultClass.COMPONENT_EXTERNAL)).removes_fru
    assert not determine_action(verdict(FaultClass.JOB_BORDERLINE)).removes_fru


def test_cost_model_counts_nff():
    model = CostModel(removal_cost_usd=800.0)
    model.record(
        MaintenanceAction.REPLACE_COMPONENT, fault_present_in_removed_fru=True
    )
    model.record(
        MaintenanceAction.REPLACE_COMPONENT, fault_present_in_removed_fru=False
    )
    model.record(MaintenanceAction.NO_ACTION, fault_present_in_removed_fru=False)
    assert model.removals == 2
    assert model.nff_removals == 1
    assert model.nff_ratio == pytest.approx(0.5)
    assert model.wasted_cost_usd == pytest.approx(800.0)
    assert model.total_removal_cost_usd == pytest.approx(1600.0)


def test_cost_model_zero_removals():
    assert CostModel().nff_ratio == 0.0


def test_savings_vs_baseline():
    good = CostModel()
    bad = CostModel()
    for _ in range(5):
        bad.record(
            MaintenanceAction.REPLACE_COMPONENT, fault_present_in_removed_fru=False
        )
    good.record(
        MaintenanceAction.REPLACE_COMPONENT, fault_present_in_removed_fru=True
    )
    assert good.savings_vs(bad) == pytest.approx(5 * 800.0)


def test_inspect_actions_count_as_removals():
    model = CostModel()
    model.record(
        MaintenanceAction.INSPECT_CONNECTOR, fault_present_in_removed_fru=False
    )
    model.record(
        MaintenanceAction.INSPECT_TRANSDUCER, fault_present_in_removed_fru=True
    )
    assert model.removals == 2
    assert model.nff_removals == 1
