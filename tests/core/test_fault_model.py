"""Unit tests for the fault-model taxonomy (Figs. 3-6)."""

from __future__ import annotations

import pytest

from repro.core.fault_model import (
    OVERVIEW_ROWS,
    REPLACEMENT_TARGET,
    ChainLink,
    ChainStage,
    FaultClass,
    FaultDescriptor,
    FaultErrorFailureChain,
    FruKind,
    LaprieBoundary,
    OriginPhase,
    Persistence,
    component_fru,
    job_fru,
)
from repro.errors import ReproError


def test_every_class_has_fru_kind_and_boundary():
    for fc in FaultClass:
        assert isinstance(fc.fru_kind, FruKind)
        assert isinstance(fc.boundary, LaprieBoundary)


def test_component_level_partition():
    component_level = {fc for fc in FaultClass if fc.is_component_level}
    assert component_level == {
        FaultClass.COMPONENT_EXTERNAL,
        FaultClass.COMPONENT_BORDERLINE,
        FaultClass.COMPONENT_INTERNAL,
    }
    for fc in FaultClass:
        assert fc.is_component_level != fc.is_job_level


def test_job_classes_project_to_component_internal():
    """§IV-B.3: job-level classes are refinements of component internals;
    in a federated one-job-per-component system the differentiation is
    obsolete and all collapse to component-internal."""
    for fc in FaultClass:
        if fc.is_job_level:
            assert fc.component_level_view() is FaultClass.COMPONENT_INTERNAL
        else:
            assert fc.component_level_view() is fc


def test_boundary_assignment_matches_paper():
    assert FaultClass.COMPONENT_EXTERNAL.boundary is LaprieBoundary.EXTERNAL
    assert FaultClass.COMPONENT_BORDERLINE.boundary is LaprieBoundary.BORDERLINE
    assert FaultClass.COMPONENT_INTERNAL.boundary is LaprieBoundary.INTERNAL
    assert FaultClass.JOB_EXTERNAL.boundary is LaprieBoundary.EXTERNAL
    assert FaultClass.JOB_BORDERLINE.boundary is LaprieBoundary.BORDERLINE
    assert FaultClass.JOB_INHERENT_SOFTWARE.boundary is LaprieBoundary.INTERNAL
    assert FaultClass.JOB_INHERENT_TRANSDUCER.boundary is LaprieBoundary.INTERNAL


def test_replacement_effectiveness():
    assert not FaultClass.COMPONENT_EXTERNAL.replacement_effective
    assert not FaultClass.JOB_BORDERLINE.replacement_effective
    assert FaultClass.COMPONENT_INTERNAL.replacement_effective
    assert FaultClass.JOB_EXTERNAL.replacement_effective
    assert FaultClass.JOB_INHERENT_SOFTWARE.replacement_effective


def test_replacement_targets_complete():
    assert set(REPLACEMENT_TARGET) == set(FaultClass)
    assert REPLACEMENT_TARGET[FaultClass.COMPONENT_EXTERNAL] is None
    assert REPLACEMENT_TARGET[FaultClass.JOB_EXTERNAL] is FruKind.COMPONENT


def test_overview_rows_cover_all_classes():
    assert len(OVERVIEW_ROWS) == len(FaultClass)
    classes = {row["class"] for row in OVERVIEW_ROWS}
    assert classes == {fc.value for fc in FaultClass}


def test_fru_refs():
    c = component_fru("comp1")
    j = job_fru("A1")
    assert c.kind is FruKind.COMPONENT and j.kind is FruKind.JOB
    assert str(c) == "component:comp1"
    assert c != j
    assert component_fru("comp1") == c  # value semantics


def test_descriptor_fru_kind_validation():
    with pytest.raises(ReproError):
        FaultDescriptor(
            "F1",
            FaultClass.COMPONENT_INTERNAL,
            Persistence.PERMANENT,
            OriginPhase.OPERATIONAL,
            job_fru("A1"),  # wrong kind
            "pcb-crack",
        )
    # JOB_EXTERNAL may reference either kind.
    FaultDescriptor(
        "F2",
        FaultClass.JOB_EXTERNAL,
        Persistence.TRANSIENT,
        OriginPhase.OPERATIONAL,
        job_fru("A1"),
        "observed-at-job",
    )


def make_chain():
    root = FaultDescriptor(
        "F1",
        FaultClass.COMPONENT_INTERNAL,
        Persistence.TRANSIENT,
        OriginPhase.OPERATIONAL,
        component_fru("comp2"),
        "pcb-crack",
        activation_us=100,
    )
    chain = FaultErrorFailureChain(root)
    chain.extend(ChainLink(ChainStage.FAULT, component_fru("comp2"), 100, "crack active"))
    chain.extend(ChainLink(ChainStage.ERROR, component_fru("comp2"), 150, "memory corrupted"))
    chain.extend(ChainLink(ChainStage.FAILURE, component_fru("comp2"), 200, "frame omitted"))
    chain.extend(ChainLink(ChainStage.FAULT, job_fru("A1"), 200, "input missing"))
    chain.extend(ChainLink(ChainStage.ERROR, job_fru("A1"), 250, "stale state"))
    return chain


def test_chain_traversal_and_reversal():
    chain = make_chain()
    assert [l.stage for l in chain.links][:3] == [
        ChainStage.FAULT,
        ChainStage.ERROR,
        ChainStage.FAILURE,
    ]
    assert chain.reversed_trace()[0].stage is ChainStage.ERROR
    assert chain.affected_frus() == [component_fru("comp2"), job_fru("A1")]
    assert len(chain.failures()) == 1


def test_chain_stops_at_root_fru():
    chain = make_chain()
    assert chain.stops_at() == component_fru("comp2")


def test_chain_rejects_time_regression():
    chain = make_chain()
    with pytest.raises(ReproError):
        chain.extend(ChainLink(ChainStage.ERROR, job_fru("A1"), 0, "too early"))
