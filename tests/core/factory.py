"""Symptom/topology factories shared by the core-layer tests."""

from __future__ import annotations

from repro.core.ona import OnaContext, Topology
from repro.core.symptoms import Symptom, SymptomType
from repro.tta.time_base import SparseTimeBase

TIME_BASE = SparseTimeBase(granularity_us=1000, precision_us=10)


def topology() -> Topology:
    """Five components in a row; jobs as in the Fig. 10 scenario."""
    return Topology(
        positions={f"comp{i}": (float(i), 0.0) for i in range(1, 6)},
        component_of_job={
            "A1": "comp1",
            "B1": "comp1",
            "S1": "comp1",
            "A3": "comp2",
            "C1": "comp2",
            "C2": "comp2",
            "S2": "comp2",
            "A2": "comp3",
            "B2": "comp3",
            "S3": "comp3",
            "s-voter": "comp4",
            "diag": "comp5",
        },
        das_of_job={
            "A1": "A",
            "A2": "A",
            "A3": "A",
            "B1": "B",
            "B2": "B",
            "C1": "C",
            "C2": "C",
            "S1": "S",
            "S2": "S",
            "S3": "S",
            "s-voter": "S",
            "diag": "DIAG",
        },
        channels=2,
    )


def sym(
    type=SymptomType.OMISSION,
    subject="comp1",
    point=0,
    observer="comp5",
    job=None,
    channel=None,
    magnitude=0.0,
    detail="",
) -> Symptom:
    return Symptom(
        type=type,
        observer=observer,
        subject_component=subject,
        time_us=point * 1000,
        lattice_point=point,
        subject_job=job,
        channel=channel,
        magnitude=magnitude,
        detail=detail,
    )


def ctx(window, now_point=1000) -> OnaContext:
    return OnaContext(
        now_us=now_point * 1000,
        time_base=TIME_BASE,
        window=list(window),
        topology=topology(),
    )
