"""Diagnosis-accuracy battery: every fault class, end-to-end (Fig. 11).

One representative scenario per fault class from the catalogue is run
through the full pipeline — injection, detection, dissemination, ONAs,
alpha-count, classification — under an activated observability context.
Each case asserts the ground-truth attribution AND the Fig. 11
maintenance action; the shared counter registry accumulates the
``battery.confusion{true=...,predicted=...}`` record that the final test
reads back as a per-class confusion check.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro import obs
from repro.analysis.scenarios import CATALOGUE, run_scenario
from repro.core.fault_model import FaultClass
from repro.core.maintenance import MaintenanceAction, determine_action

#: One representative scenario per Fig. 11 fault class, plus the action
#: the paper's decision table demands for it.
BATTERY: list[tuple[str, FaultClass, MaintenanceAction]] = [
    (
        "permanent-silent",
        FaultClass.COMPONENT_INTERNAL,
        MaintenanceAction.REPLACE_COMPONENT,
    ),
    ("seu", FaultClass.COMPONENT_EXTERNAL, MaintenanceAction.NO_ACTION),
    (
        "connector",
        FaultClass.COMPONENT_BORDERLINE,
        MaintenanceAction.INSPECT_CONNECTOR,
    ),
    (
        "bohrbug",
        FaultClass.JOB_INHERENT_SOFTWARE,
        MaintenanceAction.FORWARD_TO_OEM,
    ),
    (
        "sensor-stuck",
        FaultClass.JOB_INHERENT_TRANSDUCER,
        MaintenanceAction.INSPECT_TRANSDUCER,
    ),
    (
        "queue-config",
        FaultClass.JOB_BORDERLINE,
        MaintenanceAction.UPDATE_CONFIGURATION,
    ),
]

SEED = 7

#: Shared registry the per-case runs record their confusion counts into.
CONFUSION = obs.CounterRegistry()


@lru_cache(maxsize=None)
def _run_battery_case(name: str):
    """Run one scenario once (cached across the parametrized tests)."""
    scenario = {s.name: s for s in CATALOGUE}[name]
    with obs.activated() as o:
        run = run_scenario(scenario, seed=SEED, with_obd=False)
    predicted = run.predicted_class
    CONFUSION.inc(
        "battery.confusion",
        true=scenario.expected_class.value,
        predicted=predicted.value if predicted is not None else "none",
    )
    return run, predicted, o


@pytest.mark.parametrize(
    ("name", "expected_class", "expected_action"),
    BATTERY,
    ids=[name for name, _, _ in BATTERY],
)
def test_battery_attribution_and_fig11_action(
    name, expected_class, expected_action
):
    run, predicted, _ = _run_battery_case(name)
    assert run.descriptor.fault_class is expected_class, (
        "scenario ground truth drifted from the battery expectation"
    )
    assert predicted is expected_class, (
        f"{name}: pipeline attributed {predicted}, "
        f"ground truth is {expected_class}"
    )
    verdict = next(v for v in run.verdicts if v.fru == run.descriptor.fru)
    assert verdict.fault_class is expected_class
    recommendation = determine_action(verdict)
    assert recommendation.action is expected_action


@pytest.mark.parametrize(
    ("name", "expected_class"),
    [(n, c) for n, c, _ in BATTERY],
    ids=[name for name, _, _ in BATTERY],
)
def test_battery_counters_track_the_pipeline(name, expected_class):
    """The obs registry sees the evidence flow the verdict was built on."""
    _, _, o = _run_battery_case(name)
    assert o.counters.get("detector.symptoms") > 0
    assert o.counters.get("assessment.epochs") > 0
    assert o.counters.get("sim.events") > 0
    # Classes diagnosed via ONA patterns leave per-class match counts;
    # permanent-silent is attributed through the alpha-count path instead.
    ona_matches = {
        key: value
        for key, value in o.counters.counters("ona.triggers").items()
        if f"cls={expected_class.value}" in key
    }
    if name == "permanent-silent":
        assert o.counters.get("alpha.promotions") >= 1
    else:
        assert sum(ona_matches.values()) >= 1, (
            f"no ONA match recorded for {expected_class.value}"
        )


@lru_cache(maxsize=None)
def _run_battery_case_with_provenance(name: str):
    """Run one scenario under causal lineage (cached across tests)."""
    scenario = {s.name: s for s in CATALOGUE}[name]
    with obs.activated(obs.Observability(provenance=True)) as o:
        run = run_scenario(scenario, seed=SEED, with_obd=False)
        # Drive the Fig. 11 leaf inside the context so every chain can
        # terminate at a maintenance.recommendation node.
        for verdict in run.verdicts:
            determine_action(verdict)
    return run, tuple(o.trace_dicts())


@pytest.mark.parametrize(
    ("name", "expected_class", "expected_action"),
    BATTERY,
    ids=[name for name, _, _ in BATTERY],
)
def test_battery_provenance_chain_reaches_maintenance(
    name, expected_class, expected_action
):
    """Schema-v2 acceptance: every fault class yields a complete
    injected-fault -> maintenance-action chain via `explain`, with
    monotonically non-decreasing sim timestamps along every path."""
    from repro.obs.explain import explain

    run, records = _run_battery_case_with_provenance(name)
    result = explain(list(records), fault=run.descriptor.fault_id)
    assert result["provenance"]
    (chain,) = result["chains"]
    assert chain["cls"] == expected_class.value
    assert chain["terminal"] == "maintenance", (
        f"{name}: chain stops at {chain['terminal']} "
        f"(stages reached: {chain['stages']})"
    )
    assert expected_action.name in chain["maintenance_actions"]
    assert chain["monotonic"], (
        f"{name}: sim timestamps decrease along a causal path"
    )
    # Latency deltas exist for every consecutive pair of timed stages.
    timed = [s for s in chain["stages"] if s in chain["stage_earliest_us"]]
    assert list(chain["stage_latency_us"]) == [
        f"{a}->{b}" for a, b in zip(timed, timed[1:])
    ]


def test_battery_provenance_does_not_perturb_the_verdicts():
    """Lineage on vs off: same scenario, same verdict set."""
    name = BATTERY[0][0]
    plain, _, _ = _run_battery_case(name)
    traced, _ = _run_battery_case_with_provenance(name)
    assert [str(v.fru) for v in traced.verdicts] == [
        str(v.fru) for v in plain.verdicts
    ]
    assert [v.fault_class for v in traced.verdicts] == [
        v.fault_class for v in plain.verdicts
    ]


def test_battery_confusion_is_diagonal():
    """After all cases ran: every class attributed to itself, no leakage."""
    for name, _, _ in BATTERY:
        _run_battery_case(name)
    confusion = CONFUSION.counters("battery.confusion")
    assert len(confusion) == len(BATTERY)
    for key, count in confusion.items():
        assert count == 1
        inner = key[key.index("{") + 1 : -1]
        labels = dict(part.split("=", 1) for part in inner.split(","))
        assert labels["predicted"] == labels["true"], (
            f"off-diagonal confusion entry: {key}"
        )
