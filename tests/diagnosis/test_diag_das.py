"""Tests for the DiagnosticService facade."""

from __future__ import annotations

import pytest

from repro.core.fault_model import FaultClass
from repro.diagnosis.diag_das import DiagnosticService, build_topology
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster, small_cluster
from repro.units import ms, seconds


def test_build_topology_facts():
    parts = figure10_cluster(seed=61)
    topology = build_topology(parts.cluster)
    assert topology.component_of_job["A3"] == "comp2"
    assert topology.das_of_job["S2"] == "S"
    assert topology.channels == 2
    assert set(topology.positions) == set(parts.cluster.components)
    assert sorted(topology.jobs_on("comp2")) == ["A3", "C1", "C2", "S2"]
    assert topology.distance("comp1", "comp3") == pytest.approx(2.0)


def test_validation():
    cluster = small_cluster(3, seed=62)
    with pytest.raises(ConfigurationError):
        DiagnosticService(cluster, transport="carrier-pigeon")
    with pytest.raises(ConfigurationError):
        DiagnosticService(cluster, epoch_rounds=0)
    with pytest.raises(ConfigurationError):
        DiagnosticService(cluster, collector="ghost")


def test_default_collector_is_first_participant():
    cluster = small_cluster(3, seed=63)
    service = DiagnosticService(cluster)
    assert service.collector == "c0"


def test_direct_transport_equivalent_verdict():
    """The oracle transport and the realistic VN transport reach the same
    attribution for a persistent fault (the VN only adds bounded latency)."""
    outcomes = {}
    for transport in ("vn", "direct"):
        parts = figure10_cluster(seed=64)
        service = DiagnosticService(
            parts.cluster, collector="comp5", transport=transport
        )
        FaultInjector(parts.cluster).inject_permanent_internal("comp2", ms(200))
        parts.cluster.run(seconds(2))
        outcomes[transport] = {
            (str(v.fru), v.fault_class) for v in service.verdicts()
        }
    assert ("component:comp2", FaultClass.COMPONENT_INTERNAL) in outcomes["vn"]
    assert outcomes["vn"] == outcomes["direct"]


def test_direct_transport_has_no_network():
    cluster = small_cluster(3, seed=65)
    service = DiagnosticService(cluster, transport="direct")
    assert service.network is None
    FaultInjector(cluster).inject_permanent_internal("c1", ms(10))
    cluster.run(ms(200))
    assert service.assessment.symptoms_total > 0


def test_epoch_results_accumulate():
    cluster = small_cluster(3, seed=66)
    service = DiagnosticService(cluster, epoch_rounds=2)
    cluster.run_rounds(10)
    assert len(service.epoch_results) == 5


def test_trigger_trace_records():
    parts = figure10_cluster(seed=67)
    cluster = parts.cluster
    DiagnosticService(cluster, collector="comp5")
    FaultInjector(cluster).inject_connector_fault(
        "comp3", 0, omission_prob=1.0, at_us=ms(100)
    )
    cluster.run(seconds(1))
    assert cluster.trace.count("diagnosis.triggers") > 0
