"""Unit tests for the virtual diagnostic network."""

from __future__ import annotations

import pytest

from repro.core.symptoms import Symptom, SymptomType
from repro.diagnosis.dissemination import DIAGNOSTIC_VN, DiagnosticNetwork
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.presets import small_cluster
from repro.units import ms


def make_symptom(point=0, subject="c1"):
    return Symptom(
        type=SymptomType.OMISSION,
        observer="c2",
        subject_component=subject,
        time_us=point * 1000,
        lattice_point=point,
    )


def test_validation():
    cluster = small_cluster(4, seed=50)
    with pytest.raises(ConfigurationError):
        DiagnosticNetwork(cluster, collectors=())
    with pytest.raises(ConfigurationError):
        DiagnosticNetwork(cluster, collectors=("ghost",))
    with pytest.raises(ConfigurationError):
        DiagnosticNetwork(cluster, collectors=("c0",), slot_budget=0)


def test_collector_local_symptoms_bypass_network():
    cluster = small_cluster(4, seed=51)
    net = DiagnosticNetwork(cluster, collectors=("c0",))
    received = []
    net.add_consumer(lambda collector, s: received.append((collector, s)))
    net.deposit("c0", make_symptom())
    assert len(received) == 1
    assert net.transmitted == 0


def test_remote_symptom_arrives_within_a_round():
    cluster = small_cluster(4, seed=52)
    net = DiagnosticNetwork(cluster, collectors=("c0",))
    arrivals = []
    net.add_consumer(lambda collector, s: arrivals.append(cluster.now))
    cluster.run(ms(5))
    deposit_time = cluster.now
    net.deposit("c2", make_symptom())
    cluster.run(ms(10))
    assert len(arrivals) == 1
    assert net.transmitted == 1
    # latency bounded by one TDMA round (c2's next slot occurrence)
    assert arrivals[0] - deposit_time <= cluster.schedule.round_length_us + 1


def test_slot_budget_queues_excess():
    cluster = small_cluster(4, seed=53)
    net = DiagnosticNetwork(cluster, collectors=("c0",), slot_budget=2)
    received = []
    net.add_consumer(lambda collector, s: received.append(s))
    for i in range(5):
        net.deposit("c1", make_symptom(point=i))
    cluster.run_rounds(1)
    assert len(received) == 2
    cluster.run_rounds(2)
    assert len(received) == 5


def test_outbox_overflow_drops_oldest():
    cluster = small_cluster(4, seed=54)
    net = DiagnosticNetwork(cluster, collectors=("c0",), max_outbox=3)
    for i in range(5):
        net.deposit("c1", make_symptom(point=i))
    assert net.dropped_outbox == 2
    assert net.backlog()["c1"] == 3


def test_dead_reporter_loses_its_outbox():
    cluster = small_cluster(4, seed=55)
    net = DiagnosticNetwork(cluster, collectors=("c0",))
    received = []
    net.add_consumer(lambda collector, s: received.append(s))
    FaultInjector(cluster).inject_permanent_internal("c2", 0)
    cluster.run(ms(2))
    net.deposit("c2", make_symptom())
    cluster.run(ms(50))
    # c2 is silent: its queued symptom never reaches the collector
    assert received == []
    assert net.backlog()["c2"] == 1


def test_payload_carried_under_diagnostic_vn_key():
    cluster = small_cluster(4, seed=56)
    net = DiagnosticNetwork(cluster, collectors=("c0",))
    seen_payloads = []
    cluster.payload_consumers.append(
        lambda receiver, frame, now: seen_payloads.append(
            frame.payload.get(DIAGNOSTIC_VN)
        )
    )
    net.deposit("c1", make_symptom())
    cluster.run_rounds(2)
    assert any(p for p in seen_payloads if p)
