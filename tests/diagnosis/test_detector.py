"""Unit tests for the detection service (symptom generation)."""

from __future__ import annotations

import pytest

from repro.core.symptoms import Symptom, SymptomType
from repro.diagnosis.detector import (
    DetectionService,
    TmrMonitor,
    sensor_range_check,
    sensor_rate_check,
    sensor_stuck_check,
)
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster, small_cluster
from repro.units import ms


def collect(cluster):
    symptoms: list[Symptom] = []
    service = DetectionService(cluster, lambda obs, s: symptoms.append(s))
    return service, symptoms


def by_type(symptoms, type_):
    return [s for s in symptoms if s.type is type_]


def test_healthy_cluster_emits_no_symptoms():
    cluster = small_cluster(4, seed=31)
    _, symptoms = collect(cluster)
    cluster.run(ms(100))
    assert symptoms == []


def test_silent_component_yields_omissions_from_each_receiver():
    cluster = small_cluster(4, seed=32)
    _, symptoms = collect(cluster)
    FaultInjector(cluster).inject_permanent_internal("c1", ms(10))
    cluster.run(ms(30))
    omissions = by_type(symptoms, SymptomType.OMISSION)
    assert omissions
    assert {s.subject_component for s in omissions} == {"c1"}
    assert {s.observer for s in omissions} == {"c0", "c2", "c3"}
    assert all(s.subject_job is None for s in omissions)


def test_corrupt_component_yields_crc_symptoms():
    cluster = small_cluster(4, seed=33)
    _, symptoms = collect(cluster)
    FaultInjector(cluster).inject_permanent_internal("c1", ms(10), mode="corrupt")
    cluster.run(ms(30))
    crc = by_type(symptoms, SymptomType.CRC_ERROR)
    assert crc
    assert all(s.magnitude >= 1 for s in crc)


def test_connector_fault_yields_channel_omissions():
    cluster = small_cluster(4, seed=34)
    _, symptoms = collect(cluster)
    FaultInjector(cluster).inject_connector_fault(
        "c2", channel=0, omission_prob=1.0, at_us=ms(10), direction="tx"
    )
    cluster.run(ms(50))
    chan = by_type(symptoms, SymptomType.CHANNEL_OMISSION)
    assert chan
    assert {s.subject_component for s in chan} == {"c2"}
    assert {s.channel for s in chan} == {0}


def test_timing_fault_yields_timing_violations():
    cluster = small_cluster(4, seed=35)
    service, symptoms = collect(cluster)
    FaultInjector(cluster).inject_permanent_internal(
        "c1", ms(10), mode="timing", timing_offset_us=60.0
    )
    cluster.run(ms(50))
    timing = by_type(symptoms, SymptomType.TIMING_VIOLATION)
    assert timing
    assert all(abs(s.magnitude) > service.timing_threshold_us for s in timing)


def test_job_crash_yields_job_level_omissions():
    cluster = small_cluster(4, seed=36)
    _, symptoms = collect(cluster)
    FaultInjector(cluster).inject_job_crash("p0", ms(10))
    cluster.run(ms(40))
    job_om = [
        s
        for s in by_type(symptoms, SymptomType.OMISSION)
        if s.subject_job == "p0"
    ]
    assert job_om
    # component-level frame still arrives: no component-level omission
    assert not [
        s
        for s in by_type(symptoms, SymptomType.OMISSION)
        if s.subject_job is None
    ]


def test_value_violation_and_marginal_symptoms():
    cluster = small_cluster(4, seed=37)
    _, symptoms = collect(cluster)
    FaultInjector(cluster).inject_software_bohrbug("p0", ms(10))
    cluster.run(ms(40))
    violations = by_type(symptoms, SymptomType.VALUE_VIOLATION)
    assert violations
    assert {s.subject_job for s in violations} == {"p0"}
    assert all(s.magnitude > 0 for s in violations)


def test_queue_overflow_symptom():
    parts = figure10_cluster(seed=38)
    cluster = parts.cluster
    _, symptoms = collect(cluster)
    FaultInjector(cluster).inject_queue_config_fault("A3", "in", 1, at_us=ms(10))
    cluster.run(ms(100))
    overflows = by_type(symptoms, SymptomType.QUEUE_OVERFLOW)
    assert overflows
    assert {s.subject_job for s in overflows} == {"A3"}


def test_vn_budget_overflow_symptom():
    parts = figure10_cluster(seed=39)
    cluster = parts.cluster
    _, symptoms = collect(cluster)
    FaultInjector(cluster).inject_vn_budget_config_fault(
        "vn-C", slot_budget=1, at_us=ms(10)
    )
    cluster.run(ms(100))
    overflows = by_type(symptoms, SymptomType.VN_BUDGET_OVERFLOW)
    assert overflows
    assert all("vn-C" in s.detail for s in overflows)


def test_membership_loss_symptom():
    cluster = small_cluster(4, seed=40)
    _, symptoms = collect(cluster)
    FaultInjector(cluster).inject_permanent_internal("c2", ms(10))
    cluster.run(ms(50))
    losses = by_type(symptoms, SymptomType.MEMBERSHIP_LOSS)
    assert losses
    assert {s.subject_component for s in losses} == {"c2"}


def test_guardian_block_symptom():
    cluster = small_cluster(4, seed=41)
    _, symptoms = collect(cluster)
    FaultInjector(cluster).inject_permanent_internal("c1", ms(10), mode="babbling")
    cluster.run(ms(50))
    blocks = by_type(symptoms, SymptomType.GUARDIAN_BLOCK)
    assert blocks
    assert {s.subject_component for s in blocks} == {"c1"}


def test_tmr_monitor_reports_deviating_replica():
    parts = figure10_cluster(seed=42)
    cluster = parts.cluster
    service, symptoms = collect(cluster)
    service.add_tmr_monitor(parts.tmr_monitor)
    FaultInjector(cluster).inject_job_crash("S2", ms(20))
    cluster.run(ms(100))
    deviations = by_type(symptoms, SymptomType.REPLICA_DEVIATION)
    assert deviations
    assert {s.subject_job for s in deviations} == {"S2"}
    assert {s.subject_component for s in deviations} == {"comp2"}


def test_tmr_monitor_quiet_when_replicas_agree():
    parts = figure10_cluster(seed=43)
    cluster = parts.cluster
    service, symptoms = collect(cluster)
    service.add_tmr_monitor(parts.tmr_monitor)
    cluster.run(ms(100))
    assert by_type(symptoms, SymptomType.REPLICA_DEVIATION) == []


def test_tmr_monitor_needs_three_replicas():
    with pytest.raises(ConfigurationError):
        TmrMonitor("v", {"a": "p1", "b": "p2"})


def test_sensor_internal_checks():
    parts = figure10_cluster(seed=44)
    cluster = parts.cluster
    _, symptoms = collect(cluster)
    FaultInjector(cluster).inject_sensor_fault(
        "C1", ms(10), mode="stuck", stuck_value=25.0
    )
    cluster.run(ms(300))
    implausible = by_type(symptoms, SymptomType.SENSOR_IMPLAUSIBLE)
    assert implausible
    assert {s.subject_job for s in implausible} == {"C1"}


def test_check_factories_behaviour():
    from repro.components.job import Job, JobSpec

    job = Job(JobSpec("j", "d", ()))
    job.sensors["t"] = 5.0
    range_check = sensor_range_check("t", 0.0, 10.0)
    assert range_check(job, 0) is None
    job.sensors["t"] = 20.0
    assert range_check(job, 0) is not None

    rate_check = sensor_rate_check("t", max_rate_per_s=1.0)
    job.sensors["t"] = 0.0
    assert rate_check(job, 0) is None  # first sample
    job.sensors["t"] = 100.0
    assert rate_check(job, 1_000_000) is not None

    stuck_check = sensor_stuck_check("t", min_change=0.1, window_polls=3)
    job.sensors["t"] = 1.0
    assert stuck_check(job, 0) is None
    assert stuck_check(job, 1) is None
    assert stuck_check(job, 2) is not None  # three identical readings

    missing = sensor_range_check("ghost", 0, 1)
    assert missing(job, 0) is None
