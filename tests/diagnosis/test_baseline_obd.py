"""Unit tests for the federated OBD baseline."""

from __future__ import annotations

import pytest

from repro.core.maintenance import MaintenanceAction
from repro.diagnosis.baseline_obd import ObdBaseline
from repro.faults.injector import FaultInjector
from repro.presets import small_cluster
from repro.units import ms, seconds


def test_healthy_run_records_nothing():
    cluster = small_cluster(4, seed=60)
    obd = ObdBaseline(cluster)
    cluster.run(ms(300))
    assert obd.dtcs == []
    assert obd.recommendations() == []


def test_persistent_failure_records_dtc():
    cluster = small_cluster(4, seed=61)
    obd = ObdBaseline(cluster)
    FaultInjector(cluster).inject_permanent_internal("c1", ms(10))
    cluster.run(seconds(1))
    assert obd.components_with_dtc() == ["c1"]
    dtc = obd.dtcs[0]
    assert dtc.kind == "communication"
    assert dtc.persisted_us >= obd.record_threshold_us


def test_short_transient_invisible_to_obd():
    """The paper's point: OBD only records failures persisting > 500 ms."""
    cluster = small_cluster(4, seed=62)
    obd = ObdBaseline(cluster)
    FaultInjector(cluster).inject_transient_internal(
        "c1", ms(100), duration_us=ms(40)
    )
    cluster.run(seconds(1))
    assert obd.dtcs == []


def test_long_transient_visible_to_obd():
    cluster = small_cluster(4, seed=63)
    obd = ObdBaseline(cluster)
    FaultInjector(cluster).inject_transient_internal(
        "c1", ms(100), duration_us=ms(700)
    )
    cluster.run(seconds(1))
    assert obd.components_with_dtc() == ["c1"]


def test_one_dtc_per_episode():
    cluster = small_cluster(4, seed=64)
    obd = ObdBaseline(cluster)
    injector = FaultInjector(cluster)
    injector.inject_transient_internal("c1", ms(100), duration_us=ms(600))
    injector.inject_transient_internal("c1", seconds(1), duration_us=ms(600))
    cluster.run(seconds(2))
    assert len(obd.dtcs) == 2


def test_value_fault_records_dtc_against_component():
    cluster = small_cluster(4, seed=65)
    obd = ObdBaseline(cluster)
    FaultInjector(cluster).inject_software_bohrbug("p0", ms(10))
    cluster.run(ms(300))
    assert obd.components_with_dtc() == ["c0"]
    assert obd.dtcs[0].kind == "value"
    # one DTC only, not one per frame
    assert len(obd.dtcs) == 1


def test_recommendation_is_always_replacement():
    cluster = small_cluster(4, seed=66)
    obd = ObdBaseline(cluster)
    FaultInjector(cluster).inject_permanent_internal("c1", ms(10))
    cluster.run(seconds(1))
    recs = obd.recommendations()
    assert len(recs) == 1
    assert recs[0].action is MaintenanceAction.REPLACE_COMPONENT
    assert recs[0].removes_fru
