"""Tests for the ``python -m repro`` command-line front door."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_no_command_prints_help(capsys):
    assert main([]) == 1
    assert "demo" in capsys.readouterr().out


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Scenario catalogue" in out
    assert "wearout" in out


def test_scenario_command_runs(capsys):
    assert main(["--seed", "7", "scenario", "seu"]) == 0
    out = capsys.readouterr().out
    assert "component-external" in out
    assert "correct" in out


def test_unknown_scenario_rejected(capsys):
    assert main(["scenario", "warp-core-breach"]) == 2


def test_bathtub_command(capsys):
    assert main(["bathtub"]) == 0
    assert "Bathtub" in capsys.readouterr().out


def test_demo_command(capsys):
    assert main(["--seed", "3", "demo"]) == 0
    out = capsys.readouterr().out
    assert "component:comp2" in out
    assert "replace component" in out


def test_mc_command_writes_metrics(capsys, tmp_path):
    metrics_path = tmp_path / "out" / "mc.json"
    assert (
        main(
            [
                "--seed",
                "11",
                "--metrics-json",
                str(metrics_path),
                "mc",
                "--replicas",
                "3",
                "--horizon-ms",
                "400",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Monte-Carlo campaign" in out
    assert "attribution accuracy" in out
    assert "events/s" in out
    import json

    record = json.loads(metrics_path.read_text(encoding="utf-8"))
    assert record["replicas"] == 3
    assert record["workers"] == 1


def test_fleet_command(capsys):
    assert (
        main(
            [
                "--seed",
                "21",
                "fleet",
                "--vehicles",
                "3",
                "--drive-ms",
                "300",
                "--fault-prob",
                "0.7",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Fleet of 3" in out
    assert "replicas, workers=1" in out
