"""Tests for the ``python -m repro`` command-line front door."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_no_command_prints_help(capsys):
    assert main([]) == 1
    assert "demo" in capsys.readouterr().out


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Scenario catalogue" in out
    assert "wearout" in out


def test_scenario_command_runs(capsys):
    assert main(["--seed", "7", "scenario", "seu"]) == 0
    out = capsys.readouterr().out
    assert "component-external" in out
    assert "correct" in out


def test_unknown_scenario_rejected(capsys):
    assert main(["scenario", "warp-core-breach"]) == 2


def test_bathtub_command(capsys):
    assert main(["bathtub"]) == 0
    assert "Bathtub" in capsys.readouterr().out


def test_demo_command(capsys):
    assert main(["--seed", "3", "demo"]) == 0
    out = capsys.readouterr().out
    assert "component:comp2" in out
    assert "replace component" in out


def test_mc_command_writes_metrics(capsys, tmp_path):
    metrics_path = tmp_path / "out" / "mc.json"
    assert (
        main(
            [
                "--seed",
                "11",
                "--metrics-json",
                str(metrics_path),
                "mc",
                "--replicas",
                "3",
                "--horizon-ms",
                "400",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Monte-Carlo campaign" in out
    assert "attribution accuracy" in out
    assert "events/s" in out
    import json

    record = json.loads(metrics_path.read_text(encoding="utf-8"))
    assert record["replicas"] == 3
    assert record["workers"] == 1


def test_mc_zero_replicas_is_a_friendly_noop(capsys):
    """``mc --replicas 0`` reports the empty campaign instead of dying
    in the reducer's empty-campaign check."""
    assert main(["mc", "--replicas", "0"]) == 0
    out = capsys.readouterr().out
    assert "0 replicas" in out
    assert "nothing to run" in out


def _plan_digest_line(out: str) -> str:
    lines = [line for line in out.splitlines() if "plan digest" in line]
    assert lines, f"no plan digest in output:\n{out}"
    return lines[-1]


def test_mc_checkpoint_resume_roundtrip(capsys, tmp_path):
    """Kill-and-resume at the CLI level: a resume from a truncated
    ledger reproduces the uninterrupted run's aggregate line."""
    ledger = tmp_path / "mc.jsonl"
    args = [
        "--seed",
        "11",
        "--checkpoint",
        str(ledger),
        "mc",
        "--replicas",
        "4",
        "--horizon-ms",
        "300",
    ]
    assert main(args) == 0
    reference = _plan_digest_line(capsys.readouterr().out)

    import json

    lines = ledger.read_text(encoding="utf-8").splitlines()
    kept = []
    for line in lines:
        record = json.loads(line)
        kept.append(line)
        if record["kind"] == "chunk":
            break  # header + first completed chunk only
    assert len(kept) == 2, "expected a chunk line to truncate after"
    ledger.write_text("\n".join(kept) + "\n", encoding="utf-8")

    assert main(["resume", str(ledger)]) == 0
    out = capsys.readouterr().out
    assert "resuming mc campaign" in out
    assert "resumed:" in out
    assert _plan_digest_line(out) == reference


def test_resume_rejects_missing_ledger(capsys, tmp_path):
    assert main(["resume", str(tmp_path / "nope.jsonl")]) == 1
    err = capsys.readouterr().err
    assert "nope.jsonl" in err


def test_fleet_command(capsys):
    assert (
        main(
            [
                "--seed",
                "21",
                "fleet",
                "--vehicles",
                "3",
                "--drive-ms",
                "300",
                "--fault-prob",
                "0.7",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Fleet of 3" in out
    assert "replicas, workers=1" in out
