"""Shared helpers of the differential batteries.

Three batteries promise exactness against a reference execution —
scalar-vs-batched (``tests/integration/test_backend_differential.py``),
store-vs-reduce (``tests/storage/test_store_differential.py``) and
replay-vs-fresh (``tests/replay/``).  They share one comparison idiom:

* **wall-free outcomes** — raw trace records carry ``t_wall_s`` stamps
  that differ between ANY two runs, so per-replica comparisons collapse
  ``obs_trace`` to its canonical :func:`~repro.obs.trace_digest`;
* **a fixed fuzz corpus** — every hypothesis block is
  ``derandomize=True`` over the same strategy space, so CI replays the
  identical campaigns every run.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import strategies as st

from repro.faults.campaign import CampaignReplicaSpec
from repro.obs import trace_digest
from repro.runtime.workloads import run_random_campaigns
from repro.units import ms

#: Everything on: the most divergence-prone spec (trace + provenance).
FULL_OBS_SPEC = CampaignReplicaSpec(
    expected_faults=3.0,
    horizon_us=ms(300),
    obs_enabled=True,
    obs_trace=True,
    obs_provenance=True,
)

#: Counters and provenance histograms, but no trace stream — the store
#: batteries use this (stores never hold raw traces).
PROVENANCE_SPEC = CampaignReplicaSpec(
    expected_faults=3.0,
    horizon_us=ms(300),
    obs_enabled=True,
    obs_provenance=True,
)

#: The shared derandomized fuzz strategy space.
FUZZ_SEED = st.integers(min_value=0, max_value=2**16)
FUZZ_CHUNK = st.sampled_from((1, 3, 8))
FUZZ_EXPECTED_FAULTS = st.sampled_from((1.5, 3.0, 5.0))


def fuzz_spec(
    expected_faults: float, obs: bool, *, trace: bool = False
) -> CampaignReplicaSpec:
    """The fuzz corpus' campaign spec at one (load, obs) sample point."""
    return CampaignReplicaSpec(
        expected_faults=expected_faults,
        horizon_us=ms(250),
        obs_enabled=obs,
        obs_trace=obs and trace,
        obs_provenance=obs,
    )


def wall_free(outcome):
    """Per-replica outcomes with the trace collapsed to its digest."""
    return [
        replace(r.value, obs_trace=trace_digest(r.value.obs_trace))
        for r in outcome.results
    ]


def run_campaign(
    backend="scalar",
    *,
    replicas=6,
    seed=11,
    chunk=2,
    workers=1,
    spec=FULL_OBS_SPEC,
    **kwargs,
):
    """One campaign through the parallel runner, battery defaults."""
    return run_random_campaigns(
        replicas,
        root_seed=seed,
        spec=spec,
        workers=workers,
        chunk_size=chunk,
        backend=backend,
        **kwargs,
    )
