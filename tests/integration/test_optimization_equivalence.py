"""Equivalence battery gating hot-path optimizations of the kernel.

Any change that makes the simulator faster must leave every observable
bit of its behaviour untouched: the cluster trace digest, the canonical
(wall-free) obs-trace digest, the event count and the verdict/action
sequences of a representative scenario set are pinned here against
goldens recorded on the pre-optimization kernel.

The battery covers three scenario families:

* the full 19-mechanism catalogue (``analysis.scenarios.CATALOGUE``),
* the A8 concurrent-fault pairs (two mechanisms superimposed), and
* A10-style stochastic random campaigns across several seeds.

Horizons are capped (equivalence needs code-path coverage, not verdict
convergence), so the battery stays affordable in tier-1.

To regenerate after a *deliberate* semantic change (never for a pure
optimization — an optimization that changes these digests is a bug):

    PYTHONPATH=src python -c \
      "from tests.integration.test_optimization_equivalence import regenerate; regenerate()"
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.analysis.scenarios import CATALOGUE
from repro.core.maintenance import determine_action
from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.campaign import RandomCampaign
from repro.faults.injector import FaultInjector
from repro.obs.tracer import trace_digest
from repro.presets import figure10_cluster
from repro.units import seconds

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_equivalence.json"

#: Frozen battery parameters — never change without regenerating.
MECHANISM_SEED = 7
MECHANISM_HORIZON_US = seconds(1)
PAIR_SEED = 29
PAIR_HORIZON_US = seconds(1)
CAMPAIGN_SEEDS = (1, 2, 3)
CAMPAIGN_HORIZON_US = seconds(2)

#: A8 pairing table (mirrors benchmarks/bench_a8_concurrent.py): pairs
#: share no FRU and exclude cluster-wide mechanisms.
_PAIRABLE_FRU = (
    ("permanent-silent", "comp2"),
    ("permanent-timing", "comp1"),
    ("babbling-idiot", "comp4"),
    ("wearout", "comp3"),
    ("bohrbug", "comp3"),
    ("job-crash", "comp1"),
    ("sensor-stuck", "comp2"),
    ("queue-config", "comp2"),
)


def _pair_names() -> list[tuple[str, str]]:
    out = []
    for i, (a, fru_a) in enumerate(_PAIRABLE_FRU):
        for b, fru_b in _PAIRABLE_FRU[i + 1 :]:
            if fru_a != fru_b:
                out.append((a, b))
    return out


def _catalogue_by_name():
    return {s.name: s for s in CATALOGUE}


def _verdict_lines(service: DiagnosticService) -> list[str]:
    """Deterministic serialization of the verdict/action sequence."""
    lines = []
    for v in service.verdicts():
        action = determine_action(v).action.name
        lines.append(
            f"{v.fru}|{v.fault_class.value}|{v.persistence.value}"
            f"|{v.evidence}|{action}"
        )
    return lines


def _snapshot_run(build_and_run) -> dict:
    """Run a scenario under an obs context and snapshot its observables."""
    with obs.activated(obs.Observability()) as o:
        cluster, service = build_and_run()
    return {
        "cluster_digest": cluster.trace.digest(),
        "obs_digest": trace_digest(o.trace_dicts()),
        "events_processed": cluster.sim.events_processed,
        "trace_records": len(cluster.trace),
        "symptoms": service.detection.symptoms_emitted,
        "verdicts": _verdict_lines(service),
    }


# -- scenario family runners ---------------------------------------------------


def run_mechanism(name: str) -> dict:
    scenario = _catalogue_by_name()[name]

    def build_and_run():
        parts = figure10_cluster(seed=MECHANISM_SEED)
        cluster = parts.cluster
        service = DiagnosticService(
            cluster, collector="comp5", window_points=12_000
        )
        service.add_tmr_monitor(parts.tmr_monitor)
        scenario.inject(FaultInjector(cluster))
        cluster.run(min(scenario.duration_us, MECHANISM_HORIZON_US))
        return cluster, service

    return _snapshot_run(build_and_run)


def run_pair(a_name: str, b_name: str) -> dict:
    by_name = _catalogue_by_name()
    a, b = by_name[a_name], by_name[b_name]

    def build_and_run():
        parts = figure10_cluster(seed=PAIR_SEED)
        cluster = parts.cluster
        service = DiagnosticService(
            cluster, collector="comp5", window_points=12_000
        )
        service.add_tmr_monitor(parts.tmr_monitor)
        injector = FaultInjector(cluster)
        a.inject(injector)
        b.inject(injector)
        cluster.run(min(max(a.duration_us, b.duration_us), PAIR_HORIZON_US))
        return cluster, service

    return _snapshot_run(build_and_run)


def run_campaign(seed: int) -> dict:
    def build_and_run():
        parts = figure10_cluster(seed=seed)
        cluster = parts.cluster
        service = DiagnosticService(
            cluster, collector="comp5", window_points=12_000
        )
        injector = FaultInjector(cluster)
        campaign = RandomCampaign(
            injector,
            expected_faults=4.0,
            horizon_us=CAMPAIGN_HORIZON_US,
            sensor_jobs=("C1",),
            software_jobs=("A1", "A2", "B1", "C2"),
            config_ports=(("A3", "in"),),
        )
        campaign.run(np.random.default_rng(seed))
        cluster.run(CAMPAIGN_HORIZON_US)
        return cluster, service

    return _snapshot_run(build_and_run)


# -- golden management ---------------------------------------------------------


def _all_cases() -> dict:
    cases = {}
    for scenario in CATALOGUE:
        cases[f"mechanism:{scenario.name}"] = lambda n=scenario.name: (
            run_mechanism(n)
        )
    for a, b in _pair_names():
        cases[f"pair:{a}+{b}"] = lambda a=a, b=b: run_pair(a, b)
    for seed in CAMPAIGN_SEEDS:
        cases[f"campaign:seed{seed}"] = lambda s=seed: run_campaign(s)
    return cases


def regenerate() -> None:
    """Rewrite the golden snapshots from the current implementation."""
    goldens = {
        "meta": {
            "mechanism_seed": MECHANISM_SEED,
            "mechanism_horizon_us": MECHANISM_HORIZON_US,
            "pair_seed": PAIR_SEED,
            "pair_horizon_us": PAIR_HORIZON_US,
            "campaign_seeds": list(CAMPAIGN_SEEDS),
            "campaign_horizon_us": CAMPAIGN_HORIZON_US,
        },
        "cases": {},
    }
    for case_id, run in sorted(_all_cases().items()):
        goldens["cases"][case_id] = run()
        print(f"recorded {case_id}")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(goldens, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"regenerated {GOLDEN_PATH}: {len(goldens['cases'])} cases")


def _golden_cases() -> dict:
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))["cases"]


# -- the battery ---------------------------------------------------------------


@pytest.mark.parametrize("name", [s.name for s in CATALOGUE])
def test_mechanism_equivalence(name):
    """Each of the 19 catalogue mechanisms reproduces its golden digests."""
    golden = _golden_cases()[f"mechanism:{name}"]
    snapshot = run_mechanism(name)
    # Readable fields first, digests last as the exhaustive check.
    assert snapshot["events_processed"] == golden["events_processed"]
    assert snapshot["symptoms"] == golden["symptoms"]
    assert snapshot["verdicts"] == golden["verdicts"]
    assert snapshot["cluster_digest"] == golden["cluster_digest"]
    assert snapshot["obs_digest"] == golden["obs_digest"]


@pytest.mark.parametrize("pair", _pair_names(), ids=lambda p: f"{p[0]}+{p[1]}")
def test_pair_equivalence(pair):
    """Concurrent-fault pairs (A8) reproduce their golden digests."""
    golden = _golden_cases()[f"pair:{pair[0]}+{pair[1]}"]
    snapshot = run_pair(*pair)
    assert snapshot["events_processed"] == golden["events_processed"]
    assert snapshot["symptoms"] == golden["symptoms"]
    assert snapshot["verdicts"] == golden["verdicts"]
    assert snapshot["cluster_digest"] == golden["cluster_digest"]
    assert snapshot["obs_digest"] == golden["obs_digest"]


@pytest.mark.parametrize("seed", CAMPAIGN_SEEDS)
def test_campaign_equivalence(seed):
    """A10-style random campaigns reproduce their golden digests."""
    golden = _golden_cases()[f"campaign:seed{seed}"]
    snapshot = run_campaign(seed)
    assert snapshot["events_processed"] == golden["events_processed"]
    assert snapshot["symptoms"] == golden["symptoms"]
    assert snapshot["verdicts"] == golden["verdicts"]
    assert snapshot["cluster_digest"] == golden["cluster_digest"]
    assert snapshot["obs_digest"] == golden["obs_digest"]


def test_golden_covers_all_cases():
    """The golden file and the battery enumerate the same scenario set."""
    assert set(_golden_cases()) == set(_all_cases())


# -- the battery, replayed through the batched backend -------------------------


def run_golden_case(replica) -> dict:
    """Runner task: replica.spec is a golden case id ("kind:detail")."""
    case_id: str = replica.spec
    kind, _, rest = case_id.partition(":")
    if kind == "mechanism":
        return run_mechanism(rest)
    if kind == "pair":
        a, b = rest.split("+")
        return run_pair(a, b)
    return run_campaign(int(rest.removeprefix("seed")))


def test_all_goldens_under_batched_backend():
    """Every golden case also holds under ``backend="batched"``.

    Non-campaign tasks ride the generic sequential object pack, so each
    golden's digests must survive the pack → transport → unpack cycle
    bit for bit — per-replica, not just in aggregate.
    """
    from repro.runtime.runner import ParallelCampaignRunner

    golden = _golden_cases()
    case_ids = sorted(golden)
    runner = ParallelCampaignRunner(
        run_golden_case, workers=1, chunk_size=8, backend="batched"
    )
    outcome = runner.run(case_ids, root_seed=0)
    assert outcome.metrics.backend == "batched"
    assert len(outcome.results) == len(case_ids)
    for case_id, result in zip(case_ids, outcome.results):
        snapshot = result.value
        for key in (
            "events_processed",
            "symptoms",
            "verdicts",
            "cluster_digest",
            "obs_digest",
        ):
            assert snapshot[key] == golden[case_id][key], case_id
