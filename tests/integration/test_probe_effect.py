"""§II-D: the virtual diagnostic network introduces no probe effect.

Application-level message flow must be bit-identical with and without the
diagnostic service attached, because the diagnostic VN is an encapsulated
overlay with its own bandwidth allocation.
"""

from __future__ import annotations

from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster
from repro.units import ms, seconds


def application_trace(with_diagnosis: bool, with_fault: bool = True):
    """Run the Fig. 10 cluster and collect the application-visible history
    of A3's input port (values and sequence numbers)."""
    parts = figure10_cluster(seed=99)
    cluster = parts.cluster
    if with_diagnosis:
        DiagnosticService(cluster, collector="comp5")
    if with_fault:
        # some diagnostic traffic: a connector fault produces a steady
        # symptom stream on the diagnostic VN
        FaultInjector(cluster).inject_connector_fault(
            "comp3", 0, omission_prob=0.8, at_us=ms(100)
        )
    history = []
    a3 = cluster.job("A3")
    original = a3.spec.behaviour

    def recording(ctx):
        port = ctx.inputs["in"]
        history.extend((m.seq, m.source_job, m.value) for m in port.drain())
        return original(ctx) if original else {}

    a3.spec = a3.spec.__class__(
        name=a3.spec.name,
        das=a3.spec.das,
        ports=a3.spec.ports,
        behaviour=recording,
        safety_critical=a3.spec.safety_critical,
    )
    cluster.run(seconds(1))
    return history


def test_no_probe_effect_on_application_traffic():
    without = application_trace(with_diagnosis=False)
    with_diag = application_trace(with_diagnosis=True)
    assert without, "expected application traffic"
    assert with_diag == without


def test_no_probe_effect_even_under_heavy_symptom_load():
    parts = figure10_cluster(seed=100)
    cluster = parts.cluster
    service = DiagnosticService(cluster, collector="comp5")
    FaultInjector(cluster).inject_connector_fault(
        "comp2", 1, omission_prob=1.0, at_us=ms(50)
    )
    cluster.run(seconds(1))
    # diagnostic traffic flowed...
    assert service.network.transmitted > 0
    # ...while the application VNs saw no extra loss
    assert cluster.vns["vn-A"].tx_overflows == 0
    assert cluster.trace.count("port.overflow") == 0
