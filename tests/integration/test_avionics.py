"""Avionics (IMA) cluster integration tests."""

from __future__ import annotations

from repro.core.fault_model import FaultClass
from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.injector import FaultInjector
from repro.presets import avionics_cluster
from repro.units import ms, seconds


def make(seed=51):
    parts = avionics_cluster(seed=seed)
    service = DiagnosticService(parts.cluster, collector="lrm8")
    service.add_tmr_monitor(parts.elevator_monitor)
    service.add_tmr_monitor(parts.rudder_monitor)
    return parts, service


def test_healthy_avionics_cluster_is_clean():
    parts, service = make()
    parts.cluster.run(seconds(1))
    assert service.verdicts() == []
    assert parts.cluster.trace.kinds() == {}
    assert parts.elevator_monitor.voter.no_majority == 0


def test_lrm_failure_hits_both_tmr_triples_and_is_attributed():
    """lrm2 hosts elev2 and rud1: its failure deviates one replica of each
    triple — both voters mask, the diagnosis blames the shared LRM."""
    parts, service = make(seed=52)
    FaultInjector(parts.cluster).inject_permanent_internal("lrm2", ms(200))
    parts.cluster.run(seconds(2))
    verdicts = {str(v.fru): v for v in service.verdicts()}
    assert (
        verdicts["component:lrm2"].fault_class is FaultClass.COMPONENT_INTERNAL
    )
    assert parts.elevator_monitor.voter.suspected_replica() == "elev2"
    assert parts.rudder_monitor.voter.suspected_replica() == "rud1"
    # masking held on both surfaces
    assert parts.elevator_monitor.voter.no_majority == 0
    assert parts.rudder_monitor.voter.no_majority == 0


def test_single_replica_bug_stays_in_its_das():
    parts, service = make(seed=53)
    FaultInjector(parts.cluster).inject_job_crash("rud2", ms(200))
    parts.cluster.run(seconds(2))
    verdicts = {str(v.fru): v for v in service.verdicts()}
    assert "job:rud2" in verdicts
    assert not any(k.startswith("component:") for k in verdicts)
    # the elevator triple never saw a deviation
    assert parts.elevator_monitor.voter.deviation_counts == {}


def test_airdata_sensor_fault_attributed_to_transducer_job():
    parts, service = make(seed=54)
    cluster = parts.cluster
    from repro.diagnosis.detector import sensor_stuck_check

    cluster.job("airdata").internal_checks.append(
        sensor_stuck_check("airspeed", min_change=1e-6, window_polls=16)
    )
    FaultInjector(cluster).inject_sensor_fault(
        "airdata", ms(300), mode="stuck", stuck_value=230.0
    )
    cluster.run(seconds(2))
    verdicts = {str(v.fru): v for v in service.verdicts()}
    assert (
        verdicts["job:airdata"].fault_class
        is FaultClass.JOB_INHERENT_TRANSDUCER
    )
