"""Golden-trace regression for the observability layer.

Pins the SHA-256 of the obs trace (canonical, wall-time-excluded form —
see :func:`repro.obs.tracer.canonical_lines`) that the frozen reference
scenario of ``test_golden_trace.py`` emits with tracing enabled, plus
the counter totals.  The digest changes iff the *simulated* behaviour of
an instrumented subsystem changes — host speed never enters it.

The test also cross-checks the probe-effect contract: running with the
tracer on must reproduce the exact same cluster event trace as the
obs-disabled golden run pinned in ``golden_trace_figure10.json``.

To regenerate after a deliberate semantic change:

    PYTHONPATH=src python -c \
      "from tests.integration.test_golden_obs_trace import regenerate; regenerate()"
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import obs
from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.injector import FaultInjector
from repro.obs.tracer import trace_digest, validate_trace
from repro.presets import figure10_cluster
from repro.units import ms

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_obs_trace.json"
CLUSTER_GOLDEN_PATH = (
    Path(__file__).parent.parent / "data" / "golden_trace_figure10.json"
)

#: Frozen reference scenario — identical to test_golden_trace.py.
SEED = 2026
HORIZON_US = ms(400)

#: Counter totals pinned alongside the digest (a readable first diff).
PINNED_COUNTERS = (
    "sim.events",
    "detector.symptoms",
    "dissemination.delivered",
    "assessment.epochs",
    "alpha.promotions",
    "trust.updates",
)


def _run_reference_scenario():
    """The pinned scenario under an activated obs context."""
    with obs.activated(obs.Observability()) as o:
        parts = figure10_cluster(seed=SEED)
        cluster = parts.cluster
        DiagnosticService(cluster, collector="comp5")
        FaultInjector(cluster).inject_permanent_internal("comp2", at_us=ms(100))
        cluster.run(HORIZON_US)
    return cluster, o


def _snapshot(cluster, o) -> dict:
    records = o.trace_dicts()
    counters = o.counters
    return {
        "scenario": "figure10+permanent-comp2+obs",
        "seed": SEED,
        "horizon_us": HORIZON_US,
        "obs_digest": trace_digest(records),
        "obs_records": len(records),
        "cluster_digest": cluster.trace.digest(),
        "counters": {name: counters.get(name) for name in PINNED_COUNTERS},
    }


def regenerate() -> None:
    """Rewrite the golden snapshot from the current implementation."""
    snapshot = _snapshot(*_run_reference_scenario())
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"regenerated {GOLDEN_PATH}: digest {snapshot['obs_digest']}")


def test_obs_trace_matches_golden_digest():
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    snapshot = _snapshot(*_run_reference_scenario())
    # Readable fields first, the digest last as the exhaustive check.
    assert snapshot["obs_records"] == golden["obs_records"]
    assert snapshot["counters"] == golden["counters"]
    assert snapshot["obs_digest"] == golden["obs_digest"]


def test_tracing_does_not_perturb_the_simulation():
    """Probe-effect check: obs on reproduces the obs-off golden trace."""
    cluster, _ = _run_reference_scenario()
    golden = json.loads(CLUSTER_GOLDEN_PATH.read_text(encoding="utf-8"))
    assert cluster.trace.digest() == golden["digest"]
    assert cluster.sim.events_processed == golden["events_processed"]


def test_obs_trace_is_run_to_run_stable_and_schema_valid():
    _, a = _run_reference_scenario()
    _, b = _run_reference_scenario()
    assert trace_digest(a.trace_dicts()) == trace_digest(b.trace_dicts())
    validate_trace(
        [{"schema": 1, "kind": "meta", "name": "trace.header", "attrs": {}}]
        + a.trace_dicts()
    )
    assert a.snapshot() == b.snapshot()
