"""Concurrent-fault scenarios: the diagnosis separates superimposed faults.

Real vehicles rarely present one fault at a time; these tests superimpose
faults of different classes and check that each gets its own correct
attribution — the error-containment and correlation machinery must not
smear evidence across FRUs.
"""

from __future__ import annotations

import pytest

from repro.core.fault_model import FaultClass
from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster
from repro.units import ms, seconds


def run(inject, duration=seconds(3), seed=19):
    parts = figure10_cluster(seed=seed)
    cluster = parts.cluster
    service = DiagnosticService(cluster, collector="comp5")
    service.add_tmr_monitor(parts.tmr_monitor)
    injector = FaultInjector(cluster)
    inject(injector)
    cluster.run(duration)
    return {str(v.fru): v for v in service.verdicts()}


def test_hardware_plus_software_fault():
    verdicts = run(
        lambda inj: (
            inj.inject_permanent_internal("comp2", ms(200)),
            inj.inject_software_bohrbug("A2", ms(300)),
        )
    )
    assert verdicts["component:comp2"].fault_class is FaultClass.COMPONENT_INTERNAL
    assert verdicts["job:A2"].fault_class is FaultClass.JOB_INHERENT_SOFTWARE


def test_connector_plus_sensor_fault():
    verdicts = run(
        lambda inj: (
            inj.inject_connector_fault("comp3", 0, omission_prob=0.9, at_us=ms(200)),
            inj.inject_sensor_fault("C1", ms(300), mode="stuck", stuck_value=25.0),
        )
    )
    assert (
        verdicts["component:comp3"].fault_class
        is FaultClass.COMPONENT_BORDERLINE
    )
    assert (
        verdicts["job:C1"].fault_class is FaultClass.JOB_INHERENT_TRANSDUCER
    )


def test_emi_burst_during_connector_fault():
    """An external burst must not launder the persistent connector fault
    into an external attribution, nor vice versa."""
    verdicts = run(
        lambda inj: (
            inj.inject_connector_fault("comp3", 0, omission_prob=0.9, at_us=ms(100)),
            inj.inject_emi_burst(seconds(1), center=(0.5, 0.0), radius=1.0),
        )
    )
    assert (
        verdicts["component:comp3"].fault_class
        is FaultClass.COMPONENT_BORDERLINE
    )
    externals = [
        fru
        for fru, v in verdicts.items()
        if v.fault_class is FaultClass.COMPONENT_EXTERNAL
    ]
    assert externals, "the EMI burst should yield external attributions"
    assert "component:comp3" not in externals


def test_two_simultaneous_software_faults():
    verdicts = run(
        lambda inj: (
            inj.inject_software_bohrbug("A2", ms(200)),
            inj.inject_software_bohrbug("B1", ms(250)),
        )
    )
    assert verdicts["job:A2"].fault_class is FaultClass.JOB_INHERENT_SOFTWARE
    assert verdicts["job:B1"].fault_class is FaultClass.JOB_INHERENT_SOFTWARE


def test_config_fault_plus_component_failure():
    verdicts = run(
        lambda inj: (
            inj.inject_queue_config_fault("A3", "in", capacity=1, at_us=ms(100)),
            inj.inject_permanent_internal("comp1", ms(500)),
        )
    )
    assert verdicts["component:comp1"].fault_class is FaultClass.COMPONENT_INTERNAL
    assert verdicts["job:A3"].fault_class is FaultClass.JOB_BORDERLINE
