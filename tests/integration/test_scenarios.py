"""End-to-end classification scenarios on the Fig. 10 cluster.

Each scenario injects one fault of a known class and asserts that the
integrated diagnostic architecture attributes it to the right FRU with the
right maintenance-oriented class — the core claim of the paper, exercised
across every class of the model.
"""

from __future__ import annotations

import pytest

from repro.core.fault_model import FaultClass
from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster
from repro.units import ms, seconds

SCENARIOS = [
    pytest.param(
        lambda inj: inj.inject_permanent_internal("comp2", ms(200)),
        "component:comp2",
        FaultClass.COMPONENT_INTERNAL,
        seconds(2),
        id="permanent-silent",
    ),
    pytest.param(
        lambda inj: inj.inject_permanent_internal(
            "comp2", ms(200), mode="corrupt"
        ),
        "component:comp2",
        FaultClass.COMPONENT_INTERNAL,
        seconds(2),
        id="permanent-corrupt",
    ),
    pytest.param(
        lambda inj: inj.inject_permanent_internal(
            "comp1", ms(200), mode="timing", timing_offset_us=60.0
        ),
        "component:comp1",
        FaultClass.COMPONENT_INTERNAL,
        seconds(2),
        id="permanent-timing",
    ),
    pytest.param(
        lambda inj: inj.inject_permanent_internal(
            "comp4", ms(200), mode="babbling"
        ),
        "component:comp4",
        FaultClass.COMPONENT_INTERNAL,
        seconds(2),
        id="babbling-idiot",
    ),
    pytest.param(
        lambda inj: inj.inject_emi_burst(
            ms(300), center=(0.5, 0.0), radius=1.0
        ),
        "component:comp1",
        FaultClass.COMPONENT_EXTERNAL,
        seconds(2),
        id="emi-burst",
    ),
    pytest.param(
        lambda inj: inj.inject_seu("comp3", ms(300)),
        "component:comp3",
        FaultClass.COMPONENT_EXTERNAL,
        seconds(2),
        id="seu",
    ),
    pytest.param(
        lambda inj: inj.inject_connector_fault(
            "comp3", 0, omission_prob=0.9, at_us=ms(100)
        ),
        "component:comp3",
        FaultClass.COMPONENT_BORDERLINE,
        seconds(2),
        id="connector",
    ),
    pytest.param(
        lambda inj: inj.inject_wiring_fault(1, omission_prob=0.5, at_us=ms(100)),
        "component:loom-channel-1",
        FaultClass.COMPONENT_BORDERLINE,
        seconds(2),
        id="loom-wiring",
    ),
    pytest.param(
        lambda inj: inj.inject_software_bohrbug("A2", ms(200)),
        "job:A2",
        FaultClass.JOB_INHERENT_SOFTWARE,
        seconds(2),
        id="bohrbug",
    ),
    pytest.param(
        lambda inj: inj.inject_software_heisenbug(
            "A2", ms(100), manifest_prob=0.05
        ),
        "job:A2",
        FaultClass.JOB_INHERENT_SOFTWARE,
        seconds(3),
        id="heisenbug",
    ),
    pytest.param(
        lambda inj: inj.inject_job_crash("B1", ms(200)),
        "job:B1",
        FaultClass.JOB_INHERENT_SOFTWARE,
        seconds(2),
        id="job-crash",
    ),
    pytest.param(
        lambda inj: inj.inject_sensor_fault(
            "C1", ms(200), mode="stuck", stuck_value=25.0
        ),
        "job:C1",
        FaultClass.JOB_INHERENT_TRANSDUCER,
        seconds(2),
        id="sensor-stuck",
    ),
    pytest.param(
        lambda inj: inj.inject_sensor_fault(
            "C1", ms(200), mode="drift", drift_per_s=30.0
        ),
        "job:C1",
        FaultClass.JOB_INHERENT_TRANSDUCER,
        seconds(3),
        id="sensor-drift",
    ),
    pytest.param(
        lambda inj: inj.inject_queue_config_fault(
            "A3", "in", capacity=1, at_us=ms(100)
        ),
        "job:A3",
        FaultClass.JOB_BORDERLINE,
        seconds(2),
        id="queue-config",
    ),
    pytest.param(
        lambda inj: inj.inject_vn_budget_config_fault(
            "vn-C", slot_budget=1, at_us=ms(100)
        ),
        "job:C1",
        FaultClass.JOB_BORDERLINE,
        seconds(2),
        id="vn-budget-config",
    ),
    pytest.param(
        lambda inj: inj.inject_recurring_transients(
            "comp1", ms(100), seconds(4), fit=1.5e12, min_occurrences=6
        ),
        "component:comp1",
        FaultClass.COMPONENT_INTERNAL,
        seconds(4),
        id="recurring-transients",
    ),
    pytest.param(
        lambda inj: inj.inject_wearout(
            "comp3",
            onset_us=ms(100),
            full_us=seconds(6),
            horizon_us=seconds(8),
            base_fit=1.5e12,
            multiplier=15,
        ),
        "component:comp3",
        FaultClass.COMPONENT_INTERNAL,
        seconds(8),
        id="wearout",
    ),
]


@pytest.mark.parametrize("inject,expected_fru,expected_class,duration", SCENARIOS)
def test_scenario_classification(inject, expected_fru, expected_class, duration):
    parts = figure10_cluster(seed=7)
    cluster = parts.cluster
    service = DiagnosticService(cluster, collector="comp5")
    service.add_tmr_monitor(parts.tmr_monitor)
    injector = FaultInjector(cluster)
    inject(injector)
    cluster.run(duration)
    verdicts = service.verdicts()
    assert verdicts, "diagnosis produced no verdict"
    by_fru = {str(v.fru): v for v in verdicts}
    assert expected_fru in by_fru, f"no verdict for {expected_fru}: {verdicts}"
    assert by_fru[expected_fru].fault_class is expected_class


def test_healthy_cluster_produces_no_verdicts():
    parts = figure10_cluster(seed=7)
    service = DiagnosticService(parts.cluster, collector="comp5")
    service.add_tmr_monitor(parts.tmr_monitor)
    parts.cluster.run(seconds(2))
    assert service.verdicts() == []
    assert all(v == 1.0 for v in service.assessment.trust.values().values())


def test_tmr_replica_failure_detected_and_masked():
    """Fig. 10 / §V-C: a failing TMR replica is masked by the voter while
    the diagnosis pinpoints the replica."""
    parts = figure10_cluster(seed=7)
    cluster = parts.cluster
    service = DiagnosticService(cluster, collector="comp5")
    service.add_tmr_monitor(parts.tmr_monitor)
    FaultInjector(cluster).inject_job_crash("S2", ms(200))
    cluster.run(seconds(2))
    by_fru = {str(v.fru): v for v in service.verdicts()}
    assert "job:S2" in by_fru
    # the voter kept producing a result (masking worked)
    assert parts.tmr_monitor.voter.masked > 0
    assert parts.tmr_monitor.voter.suspected_replica() == "S2"


def test_component_internal_vs_job_inherent_discrimination():
    """The core Fig. 10 judgment: same observable job (S2) failing — but
    when the *whole component* comp2 fails, the verdict must move to the
    component, not the job."""
    parts = figure10_cluster(seed=7)
    cluster = parts.cluster
    service = DiagnosticService(cluster, collector="comp5")
    service.add_tmr_monitor(parts.tmr_monitor)
    FaultInjector(cluster).inject_permanent_internal("comp2", ms(200))
    cluster.run(seconds(2))
    by_fru = {str(v.fru): v for v in service.verdicts()}
    assert "component:comp2" in by_fru
    assert (
        by_fru["component:comp2"].fault_class is FaultClass.COMPONENT_INTERNAL
    )
    # no job-level misattribution for the jobs hosted on comp2
    for job in ("A3", "C1", "C2", "S2"):
        assert f"job:{job}" not in by_fru
