"""Integrated diagnosis vs federated OBD: the no-fault-found comparison.

The economic motivation of the paper (§I): OBD-driven replacement of units
affected by external/transient disturbances produces NFF removals; the
maintenance-oriented classification avoids them.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import evaluate_recommendations, score_campaign
from repro.core.maintenance import MaintenanceAction
from repro.diagnosis.baseline_obd import ObdBaseline
from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster
from repro.core.maintenance import determine_action
from repro.units import ms, seconds


def run_mixed_campaign(seed=5):
    parts = figure10_cluster(seed=seed)
    cluster = parts.cluster
    service = DiagnosticService(cluster, collector="comp5")
    obd = ObdBaseline(cluster)
    injector = FaultInjector(cluster)
    # one genuinely internal fault...
    injector.inject_permanent_internal("comp1", ms(300))
    # ...plus external disturbances that *look* like failures to OBD
    injector.inject_emi_burst(
        seconds(1), center=(2.5, 0.0), radius=1.0, duration_us=ms(600)
    )
    cluster.run(seconds(3))
    return parts, service, obd, injector


def test_integrated_diagnosis_avoids_nff_removals():
    parts, service, obd, injector = run_mixed_campaign()
    truth = injector.injected

    integrated_recs = [
        determine_action(v) for v in service.verdicts()
    ]
    obd_recs = obd.recommendations()

    integrated_cost = evaluate_recommendations(integrated_recs, truth)
    obd_cost = evaluate_recommendations(obd_recs, truth)

    # OBD replaces the EMI-disturbed components too -> NFF removals.
    assert obd_cost.nff_removals > 0
    assert integrated_cost.nff_removals == 0
    # both find the genuinely broken component
    assert any(
        r.action is MaintenanceAction.REPLACE_COMPONENT
        and r.fru.name == "comp1"
        for r in integrated_recs
    )
    assert "comp1" in obd.components_with_dtc()
    # money saved
    assert integrated_cost.savings_vs(obd_cost) > 0


def test_obd_blind_to_short_transients_integrated_not():
    parts = figure10_cluster(seed=6)
    cluster = parts.cluster
    service = DiagnosticService(cluster, collector="comp5")
    obd = ObdBaseline(cluster)
    injector = FaultInjector(cluster)
    # recurring sub-500ms internal transients: classic NFF trigger
    injector.inject_recurring_transients(
        "comp2", ms(100), seconds(4), fit=1.5e12, min_occurrences=6
    )
    cluster.run(seconds(4))
    assert obd.dtcs == []  # every outage below the 500 ms threshold
    verdicts = {str(v.fru): v for v in service.verdicts()}
    assert "component:comp2" in verdicts


def test_campaign_scoring_end_to_end():
    parts, service, obd, injector = run_mixed_campaign(seed=8)
    score = score_campaign(
        injector.injected,
        service.verdicts(),
        job_locations=parts.cluster.job_location,
    )
    assert score.accuracy >= 0.5
    assert score.matched >= 1
