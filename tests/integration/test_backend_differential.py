"""Cross-backend differential battery: scalar vs replica-batched.

The batched backend (``repro.runtime.batch``) promises *exact* identity
with the scalar reference path — same verdict counts, same merged obs
counters, same provenance stage-latency histograms, same per-replica
outcomes.  This battery drives randomly sampled campaigns through both
backends and fails on any divergence.

The hypothesis block is ``derandomize=True`` so the corpus is a fixed,
replayable seed set (the CI ``differential`` matrix replays exactly
these campaigns); the deterministic smoke tests run in tier-1.  Shared
comparison helpers (wall-free outcomes, the fuzz strategy space) live in
``tests/_differential.py``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fleet_sim import simulate_diagnosed_fleet
from repro.units import ms
from tests._differential import (
    FUZZ_CHUNK,
    FUZZ_EXPECTED_FAULTS,
    FUZZ_SEED,
    fuzz_spec,
    run_campaign,
    wall_free,
)

pytestmark = pytest.mark.differential


# -- deterministic smoke (tier-1) ------------------------------------------


@pytest.mark.parametrize("chunk", [1, 3, 8])
def test_batched_matches_scalar_across_batch_sizes(chunk):
    """Batch size 1, mid-size, and one-chunk-covers-all are all exact."""
    scalar = run_campaign("scalar", chunk=chunk)
    batched = run_campaign("batched", chunk=chunk)
    # Summary equality covers verdict totals, per-mechanism folds, the
    # plan digest and the merged obs-counter snapshot.
    assert batched.value == scalar.value
    assert wall_free(batched) == wall_free(scalar)
    assert batched.metrics.backend == "batched"
    assert scalar.metrics.backend == "scalar"


def test_stage_latency_histograms_identical():
    """Provenance stage-latency histograms survive the batched fold."""
    scalar = run_campaign("scalar")
    batched = run_campaign("batched")
    blob_scalar = json.dumps(
        scalar.value.obs_counters, sort_keys=True, default=str
    )
    blob_batched = json.dumps(
        batched.value.obs_counters, sort_keys=True, default=str
    )
    assert "stage_latency" in blob_batched
    assert blob_batched == blob_scalar


def test_batched_pool_matches_scalar_serial():
    """backend=batched composes with the process pool unchanged."""
    scalar = run_campaign("scalar", replicas=4, chunk=2, workers=1)
    batched = run_campaign("batched", replicas=4, chunk=2, workers=2)
    assert batched.value == scalar.value
    assert wall_free(batched) == wall_free(scalar)
    assert batched.metrics.workers == 2
    assert batched.metrics.backend == "batched"


def test_batched_fleet_matches_scalar():
    """The generic object-pack path: fleet vehicles, both backends."""
    kwargs = dict(seed=5, drive_duration_us=ms(400), workers=1, chunk_size=2)
    scalar = simulate_diagnosed_fleet(4, **kwargs)
    batched = simulate_diagnosed_fleet(4, backend="batched", **kwargs)
    assert batched.report.counts.tolist() == scalar.report.counts.tolist()
    assert batched.vehicles_with_fault == scalar.vehicles_with_fault
    assert batched.vehicles_detected == scalar.vehicles_detected
    assert batched.metrics.backend == "batched"


# -- fixed-corpus fuzz ------------------------------------------------------


@settings(max_examples=8, deadline=None, derandomize=True)
@given(
    seed=FUZZ_SEED,
    replicas=st.integers(min_value=1, max_value=5),
    chunk=FUZZ_CHUNK,
    expected_faults=FUZZ_EXPECTED_FAULTS,
    obs=st.booleans(),
)
def test_fuzz_batched_equals_scalar(seed, replicas, chunk, expected_faults, obs):
    """Random (seed, size, batch, load, obs) campaigns: always exact."""
    spec = fuzz_spec(expected_faults, obs, trace=True)
    scalar = run_campaign(
        "scalar", replicas=replicas, seed=seed, chunk=chunk, spec=spec
    )
    batched = run_campaign(
        "batched", replicas=replicas, seed=seed, chunk=chunk, spec=spec
    )
    assert batched.value == scalar.value
    assert wall_free(batched) == wall_free(scalar)
