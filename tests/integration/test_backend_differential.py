"""Cross-backend differential battery: scalar vs replica-batched.

The batched backend (``repro.runtime.batch``) promises *exact* identity
with the scalar reference path — same verdict counts, same merged obs
counters, same provenance stage-latency histograms, same per-replica
outcomes.  This battery drives randomly sampled campaigns through both
backends and fails on any divergence.

The hypothesis block is ``derandomize=True`` so the corpus is a fixed,
replayable seed set (the CI ``backend-differential`` job replays exactly
these campaigns); the deterministic smoke tests run in tier-1.

Wall-clock caveat: raw trace records carry ``t_wall_s`` stamps that
differ between ANY two runs (scalar vs scalar included), so per-replica
comparisons collapse ``obs_trace`` to its canonical wall-free
``trace_digest`` — the same convention the checkpoint acceptance tests
use.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fleet_sim import simulate_diagnosed_fleet
from repro.faults.campaign import CampaignReplicaSpec
from repro.obs import trace_digest
from repro.runtime.workloads import run_random_campaigns
from repro.units import ms

FULL_OBS_SPEC = CampaignReplicaSpec(
    expected_faults=3.0,
    horizon_us=ms(300),
    obs_enabled=True,
    obs_trace=True,
    obs_provenance=True,
)


def _wall_free(outcome):
    """Per-replica outcomes with the trace collapsed to its digest."""
    return [
        replace(r.value, obs_trace=trace_digest(r.value.obs_trace))
        for r in outcome.results
    ]


def _run(backend, *, replicas=6, seed=11, chunk=2, workers=1, spec=FULL_OBS_SPEC):
    return run_random_campaigns(
        replicas,
        root_seed=seed,
        spec=spec,
        workers=workers,
        chunk_size=chunk,
        backend=backend,
    )


# -- deterministic smoke (tier-1) ------------------------------------------


@pytest.mark.parametrize("chunk", [1, 3, 8])
def test_batched_matches_scalar_across_batch_sizes(chunk):
    """Batch size 1, mid-size, and one-chunk-covers-all are all exact."""
    scalar = _run("scalar", chunk=chunk)
    batched = _run("batched", chunk=chunk)
    # Summary equality covers verdict totals, per-mechanism folds, the
    # plan digest and the merged obs-counter snapshot.
    assert batched.value == scalar.value
    assert _wall_free(batched) == _wall_free(scalar)
    assert batched.metrics.backend == "batched"
    assert scalar.metrics.backend == "scalar"


def test_stage_latency_histograms_identical():
    """Provenance stage-latency histograms survive the batched fold."""
    scalar = _run("scalar")
    batched = _run("batched")
    blob_scalar = json.dumps(
        scalar.value.obs_counters, sort_keys=True, default=str
    )
    blob_batched = json.dumps(
        batched.value.obs_counters, sort_keys=True, default=str
    )
    assert "stage_latency" in blob_batched
    assert blob_batched == blob_scalar


def test_batched_pool_matches_scalar_serial():
    """backend=batched composes with the process pool unchanged."""
    scalar = _run("scalar", replicas=4, chunk=2, workers=1)
    batched = _run("batched", replicas=4, chunk=2, workers=2)
    assert batched.value == scalar.value
    assert _wall_free(batched) == _wall_free(scalar)
    assert batched.metrics.workers == 2
    assert batched.metrics.backend == "batched"


def test_batched_fleet_matches_scalar():
    """The generic object-pack path: fleet vehicles, both backends."""
    kwargs = dict(seed=5, drive_duration_us=ms(400), workers=1, chunk_size=2)
    scalar = simulate_diagnosed_fleet(4, **kwargs)
    batched = simulate_diagnosed_fleet(4, backend="batched", **kwargs)
    assert batched.report.counts.tolist() == scalar.report.counts.tolist()
    assert batched.vehicles_with_fault == scalar.vehicles_with_fault
    assert batched.vehicles_detected == scalar.vehicles_detected
    assert batched.metrics.backend == "batched"


# -- fixed-corpus fuzz ------------------------------------------------------


@settings(max_examples=8, deadline=None, derandomize=True)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    replicas=st.integers(min_value=1, max_value=5),
    chunk=st.sampled_from((1, 3, 8)),
    expected_faults=st.sampled_from((1.5, 3.0, 5.0)),
    obs=st.booleans(),
)
def test_fuzz_batched_equals_scalar(seed, replicas, chunk, expected_faults, obs):
    """Random (seed, size, batch, load, obs) campaigns: always exact."""
    spec = CampaignReplicaSpec(
        expected_faults=expected_faults,
        horizon_us=ms(250),
        obs_enabled=obs,
        obs_trace=obs,
        obs_provenance=obs,
    )
    scalar = _run("scalar", replicas=replicas, seed=seed, chunk=chunk, spec=spec)
    batched = _run(
        "batched", replicas=replicas, seed=seed, chunk=chunk, spec=spec
    )
    assert batched.value == scalar.value
    assert _wall_free(batched) == _wall_free(scalar)
