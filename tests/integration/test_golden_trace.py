"""Golden-trace regression test for the determinism contract.

The engine docstring promises: same seed, same cluster, same horizon ⇒
identical event orderings.  This test pins that promise to a concrete
artefact: the Fig. 10 reference scenario below must reproduce the exact
trace digest snapshotted in ``tests/data/golden_trace_figure10.json``.

If this test fails, either (a) a change broke determinism — fix it — or
(b) a deliberate semantic change altered the reference trace.  Only in
case (b), regenerate the snapshot and review the diff of the summary
fields:

    PYTHONPATH=src python -c \
      "from tests.integration.test_golden_trace import regenerate; regenerate()"
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster
from repro.units import ms

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_trace_figure10.json"

#: Frozen reference scenario — never change these without regenerating.
SEED = 2026
HORIZON_US = ms(400)


def _run_reference_scenario():
    """The pinned scenario: one permanent fault, 400 ms, seed 2026."""
    parts = figure10_cluster(seed=SEED)
    cluster = parts.cluster
    DiagnosticService(cluster, collector="comp5")
    FaultInjector(cluster).inject_permanent_internal("comp2", at_us=ms(100))
    cluster.run(HORIZON_US)
    return cluster


def _snapshot(cluster) -> dict:
    return {
        "scenario": "figure10+permanent-comp2",
        "seed": SEED,
        "horizon_us": HORIZON_US,
        "digest": cluster.trace.digest(),
        "records": len(cluster.trace),
        "events_processed": cluster.sim.events_processed,
        "kinds": dict(sorted(cluster.trace.kinds().items())),
    }


def regenerate() -> None:
    """Rewrite the golden snapshot from the current implementation."""
    snapshot = _snapshot(_run_reference_scenario())
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"regenerated {GOLDEN_PATH}: digest {snapshot['digest']}")


def test_reference_trace_matches_golden_digest():
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    snapshot = _snapshot(_run_reference_scenario())
    # Compare the coarse fields first for a readable failure, the
    # digest last as the exhaustive check.
    assert snapshot["records"] == golden["records"]
    assert snapshot["events_processed"] == golden["events_processed"]
    assert snapshot["kinds"] == golden["kinds"]
    assert snapshot["digest"] == golden["digest"]


def test_trace_digest_is_run_to_run_stable():
    a = _run_reference_scenario().trace
    b = _run_reference_scenario().trace
    assert a.digest() == b.digest()
    assert list(a.canonical_lines()) == list(b.canonical_lines())


def test_canonical_lines_are_plain_text():
    """No numpy reprs or unsorted dicts may leak into the normal form."""
    cluster = _run_reference_scenario()
    for line in cluster.trace.canonical_lines():
        assert "np." not in line  # no numpy scalar repr
        assert "array(" not in line
        assert "\n" not in line
