"""Long-run soak: bounded memory, membership recovery, restart semantics."""

from __future__ import annotations

from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster, small_cluster
from repro.units import ms, seconds


def test_membership_recovers_after_transient_outage():
    cluster = small_cluster(4, seed=101)
    FaultInjector(cluster).inject_transient_internal(
        "c1", ms(100), duration_us=ms(40)
    )
    cluster.run(ms(120))
    assert not cluster.memberships["c0"].is_member("c1")
    cluster.run(ms(200))
    # after the outage ends, c1 rejoins every view
    for observer, svc in cluster.memberships.items():
        assert svc.is_member("c1"), observer
    assert cluster.memberships["c0"].removal_count("c1") == 1


def test_restart_recovers_external_victim():
    """§III-C: 'a restart of the component with subsequent state
    synchronisation is a typical strategy' for external faults."""
    cluster = small_cluster(4, seed=102)
    component = cluster.components["c2"]
    component.hardware.transient_outage_until_us = seconds(10)  # stuck
    cluster.run(ms(100))
    assert not component.operational(cluster.now)
    component.restart(cluster.now)
    assert component.operational(cluster.now)
    cluster.run(ms(200))
    assert cluster.memberships["c0"].is_member("c2")


def test_soak_window_memory_stays_bounded():
    """A noisy fault source over a long run must not grow the assessment
    window past its configured bound (pruning works)."""
    parts = figure10_cluster(seed=103)
    cluster = parts.cluster
    service = DiagnosticService(
        cluster, collector="comp5", window_points=1_000
    )
    injector = FaultInjector(cluster)
    injector.inject_connector_fault("comp3", 0, omission_prob=0.7, at_us=ms(50))
    injector.inject_recurring_transients(
        "comp1", ms(100), seconds(8), fit=5e11, min_occurrences=4
    )
    cluster.run(seconds(8))
    window = service.assessment._window
    assert window, "expected a busy symptom stream"
    newest = max(s.lattice_point for s in window)
    oldest = min(s.lattice_point for s in window)
    assert newest - oldest <= 1_000
    # keys set stays in lockstep with the window (no leak)
    assert len(service.assessment._seen_keys) == len(
        {s.key() for s in window}
    )


def test_soak_diagnosis_remains_correct_over_long_run():
    parts = figure10_cluster(seed=104)
    cluster = parts.cluster
    service = DiagnosticService(cluster, collector="comp5")
    FaultInjector(cluster).inject_connector_fault(
        "comp3", 1, omission_prob=0.6, at_us=ms(100)
    )
    cluster.run(seconds(10))
    verdicts = {str(v.fru): v for v in service.verdicts()}
    assert "component:comp3" in verdicts
    # trust recovers nowhere else
    for name, value in service.assessment.trust.values().items():
        if name != "component:comp3":
            assert value == 1.0, name
