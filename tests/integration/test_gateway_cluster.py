"""Hidden-gateway integration: cross-DAS data flow without duplication."""

from __future__ import annotations

from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.injector import FaultInjector
from repro.presets import gateway_cluster
from repro.units import ms, seconds


def test_gateway_forwards_wheel_speed_to_dashboard():
    cluster = gateway_cluster(seed=41)
    cluster.run(ms(400))
    dashboard = cluster.job("dashboard")
    msg = dashboard.port("speed").read_state()
    assert msg is not None
    assert msg.source_job == "gw-chassis-telematics"
    assert 14.0 <= float(msg.value) <= 26.0  # the chassis wheel speed
    # the ABS consumer in the producing DAS gets the same physical value
    abs_msg = cluster.job("abs-ctrl").port("speed_in").read_state()
    assert abs_msg is not None
    assert abs_msg.source_job == "wheel-sensor"


def test_gateway_cluster_runs_clean():
    cluster = gateway_cluster(seed=42)
    service = DiagnosticService(cluster, collector="ecu-dashboard")
    cluster.run(seconds(1))
    assert service.verdicts() == []
    assert cluster.trace.kinds() == {}


def test_gateway_host_failure_diagnosed_and_flow_stops():
    cluster = gateway_cluster(seed=43)
    service = DiagnosticService(cluster, collector="ecu-dashboard")
    FaultInjector(cluster).inject_permanent_internal("ecu-gateway", ms(300))
    cluster.run(seconds(2))
    verdicts = {str(v.fru): v for v in service.verdicts()}
    assert "component:ecu-gateway" in verdicts
    # the dashboard stops receiving fresh values once the gateway is dead
    dashboard = cluster.job("dashboard")
    msg = dashboard.port("speed").read_state()
    assert msg is None or msg.send_time_us < ms(400)
