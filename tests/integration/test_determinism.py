"""Determinism: identical seeds reproduce identical traces and verdicts.

Reproducibility is a stated design requirement (DESIGN.md): every
stochastic element draws from named seeded streams, so reruns are
bit-identical — the property that makes the figure benches meaningful.
"""

from __future__ import annotations

from repro.analysis.scenarios import CATALOGUE, run_scenario
from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster
from repro.units import ms, seconds


def fingerprint(cluster, service):
    trace = tuple(
        (r.time, r.kind, r.source, tuple(sorted(r.data.items())))
        for r in cluster.trace
    )
    verdicts = tuple(
        (str(v.fru), v.fault_class.value, round(v.confidence, 12))
        for v in service.verdicts()
    )
    symptoms = tuple(
        (s.type.value, s.subject_component, s.subject_job, s.lattice_point)
        for s in service.assessment._window
    )
    return trace, verdicts, symptoms


def run_once(seed):
    parts = figure10_cluster(seed=seed)
    cluster = parts.cluster
    service = DiagnosticService(cluster, collector="comp5")
    injector = FaultInjector(cluster)
    injector.inject_emi_burst(ms(300), center=(0.5, 0.0), radius=1.0)
    injector.inject_connector_fault("comp3", 0, omission_prob=0.5, at_us=ms(500))
    injector.inject_software_heisenbug("A2", ms(100), manifest_prob=0.1)
    cluster.run(seconds(2))
    return fingerprint(cluster, service)


def test_same_seed_identical_everything():
    assert run_once(5) == run_once(5)


def test_different_seed_differs():
    assert run_once(5) != run_once(6)


def test_scenario_runner_deterministic():
    by_name = {s.name: s for s in CATALOGUE}
    scenario = by_name["heisenbug"]
    a = run_scenario(scenario, seed=9)
    b = run_scenario(scenario, seed=9)
    assert [
        (str(v.fru), v.fault_class, v.confidence) for v in a.verdicts
    ] == [(str(v.fru), v.fault_class, v.confidence) for v in b.verdicts]
    assert a.parts.cluster.trace.kinds() == b.parts.cluster.trace.kinds()
