"""Field trial: random campaign → diagnosis → workshop → verification.

The capstone integration: a vehicle accumulates a random mix of faults in
the field, the integrated diagnosis classifies them, the service station
executes the recommended actions (with the diagnosis wired in so repaired
FRUs get a clean record), and the verification drive confirms the vehicle
is healthy — with no unjustified removal along the way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.maintenance import MaintenanceAction, determine_action
from repro.core.workshop import BenchRetest, ServiceStation
from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.campaign import RandomCampaign
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster
from repro.units import seconds

#: Mechanisms whose repair the workshop fully automates.  Heisenbugs are
#: excluded on purpose: their action is FORWARD_TO_OEM (no local repair),
#: so a vehicle with one legitimately keeps showing sporadic symptoms.
REPAIRABLE_MIX = {
    "seu": 0.15,
    "connector": 0.25,
    "recurring-transient": 0.20,
    "permanent": 0.15,
    "software-bohrbug": 0.10,
    "sensor": 0.10,
    "queue-config": 0.05,
}


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_field_trial_cycle(seed):
    parts = figure10_cluster(seed=seed)
    cluster = parts.cluster
    service = DiagnosticService(cluster, collector="comp5", window_points=12_000)
    injector = FaultInjector(cluster)
    campaign = RandomCampaign(
        injector,
        expected_faults=3.0,
        horizon_us=seconds(6),
        mix=dict(REPAIRABLE_MIX),
        sensor_jobs=("C1",),
        software_jobs=("A1", "A2", "B1", "C2"),
        config_ports=(("A3", "in"),),
    )
    plan = campaign.run(np.random.default_rng(seed))
    cluster.run(seconds(6))

    # Software updates exist for every job (the OEM already shipped fixes).
    updates = frozenset(cluster.job_location)
    recommendations = [
        determine_action(v, software_update_available=v.fru.name in updates)
        for v in service.verdicts()
    ]
    station = ServiceStation(
        cluster,
        software_updates=updates,
        diagnosis=service,
        bench=BenchRetest(ground_truth=injector.injected),
    )
    station.execute_all(recommendations)

    # Every removal was justified (zero NFF).
    assert station.nff_count == 0

    # Verification drive: clean (modulo a one-round drain).
    cluster.run_rounds(1)
    baseline = service.detection.symptoms_emitted
    cluster.run(seconds(2))
    new_symptoms = service.detection.symptoms_emitted - baseline
    assert new_symptoms == 0, (
        f"seed {seed}: {new_symptoms} symptoms after repair; "
        f"plan was {[e[0] for e in plan.events]}"
    )
