"""Unit + property tests for TMR voting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.components.redundancy import TmrVoter
from repro.errors import ConfigurationError

REPLICAS = ("r1", "r2", "r3")


def test_unanimous_vote():
    voter = TmrVoter(REPLICAS)
    result = voter.vote({"r1": 1.0, "r2": 1.0, "r3": 1.0})
    assert result.value == 1.0
    assert result.unanimous
    assert not result.masked_failure


def test_single_deviation_masked():
    voter = TmrVoter(REPLICAS)
    result = voter.vote({"r1": 1.0, "r2": 1.0, "r3": 9.0})
    assert result.value == 1.0
    assert result.deviating == ("r3",)
    assert result.masked_failure
    assert voter.masked == 1


def test_missing_replica_masked():
    voter = TmrVoter(REPLICAS)
    result = voter.vote({"r1": 2.0, "r3": 2.0})
    assert result.value == 2.0
    assert result.missing == ("r2",)
    assert result.masked_failure


def test_no_majority():
    voter = TmrVoter(REPLICAS)
    result = voter.vote({"r1": 1.0, "r2": 2.0, "r3": 3.0})
    assert result.value is None
    assert voter.no_majority == 1


def test_tolerance_groups_close_values():
    voter = TmrVoter(REPLICAS, tolerance=0.1)
    result = voter.vote({"r1": 1.0, "r2": 1.05, "r3": 5.0})
    assert result.value == pytest.approx(1.025)
    assert result.deviating == ("r3",)


def test_suspected_replica_accumulates():
    voter = TmrVoter(REPLICAS)
    assert voter.suspected_replica() is None
    for _ in range(3):
        voter.vote({"r1": 1.0, "r2": 1.0, "r3": 9.0})
    assert voter.suspected_replica(min_count=3) == "r3"
    assert voter.deviation_counts["r3"] == 3


def test_validation():
    with pytest.raises(ConfigurationError):
        TmrVoter(("a", "b"))
    with pytest.raises(ConfigurationError):
        TmrVoter(("a", "a", "b"))
    with pytest.raises(ConfigurationError):
        TmrVoter(REPLICAS, tolerance=-1.0)


@given(
    st.floats(min_value=-1e6, max_value=1e6),
    st.floats(min_value=-1e6, max_value=1e6),
)
def test_property_two_agreeing_values_always_win(good, bad):
    voter = TmrVoter(REPLICAS, tolerance=1e-9)
    result = voter.vote({"r1": good, "r2": good, "r3": bad})
    # Within the agreement tolerance the voted value may average in the
    # third replica; it always stays within tolerance of the good value.
    assert result.value == pytest.approx(good, abs=1e-9, rel=1e-9)
    if abs(bad - good) > 2e-9:
        assert result.deviating == ("r3",)
