"""Unit tests for jobs, behaviours and fault hooks."""

from __future__ import annotations

import pytest

from repro.components.job import (
    DispatchContext,
    Job,
    JobSpec,
    counter_behaviour,
    drain_inputs,
    sensor_relay_behaviour,
    sine_behaviour,
    time_sine_behaviour,
)
from repro.components.ports import (
    PortDirection,
    PortKind,
    PortSpec,
)
from repro.errors import ConfigurationError


def make_job(behaviour=None, ports=None):
    ports = ports or (
        PortSpec("out", PortDirection.OUT),
        PortSpec("in", PortDirection.IN, PortKind.EVENT, queue_capacity=4),
    )
    return Job(JobSpec("j1", "das1", ports, behaviour))


def test_dispatch_counter_behaviour():
    job = make_job(counter_behaviour(step=2.0, start=1.0))
    msgs = job.dispatch(100)
    assert len(msgs) == 1
    assert msgs[0].value == 1.0
    assert msgs[0].port == "out"
    msgs = job.dispatch(200)
    assert msgs[0].value == 3.0
    assert job.dispatch_count == 2


def test_star_broadcasts_to_all_out_ports():
    ports = (
        PortSpec("out1", PortDirection.OUT),
        PortSpec("out2", PortDirection.OUT),
    )
    job = make_job(counter_behaviour(), ports=ports)
    msgs = job.dispatch(0)
    assert {m.port for m in msgs} == {"out1", "out2"}


def test_behaviour_writing_to_in_port_rejected():
    job = make_job(lambda ctx: {"in": 1.0})
    with pytest.raises(ConfigurationError):
        job.dispatch(0)


def test_no_behaviour_emits_nothing():
    job = make_job(None)
    assert job.dispatch(0) == []


def test_crash_and_suppression():
    job = make_job(counter_behaviour())
    job.suppressed_until_us = 100
    assert job.dispatch(50) == []
    assert job.dispatch(150) != []
    job.crashed = True
    assert job.dispatch(200) == []
    assert not job.active(200)


def test_behaviour_wrapper_hook():
    job = make_job(counter_behaviour())
    job.behaviour_wrapper = lambda ctx, outputs: {"out": -1.0}
    assert job.dispatch(0)[0].value == -1.0


def test_sensor_relay_and_transform():
    ports = (PortSpec("out", PortDirection.OUT),)
    job = make_job(sensor_relay_behaviour("t", "out"), ports=ports)
    job.sensors["t"] = 42.0
    assert job.dispatch(0)[0].value == 42.0
    job.sensor_transform = lambda name, value: value + 1.0
    assert job.dispatch(1)[0].value == 43.0
    job.replace_transducer()
    assert job.dispatch(2)[0].value == 42.0


def test_update_software_clears_fault_and_bumps_version():
    job = make_job(counter_behaviour())
    job.behaviour_wrapper = lambda ctx, outputs: {"out": -1.0}
    job.update_software("2.0")
    assert job.version == "2.0"
    assert job.behaviour_wrapper is None
    assert job.update_count == 1


def test_update_software_with_new_behaviour():
    job = make_job(counter_behaviour())
    job.update_software("3.0", behaviour=lambda ctx: {"out": 9.0})
    assert job.dispatch(0)[0].value == 9.0


def test_sine_behaviour_bounded_and_periodic():
    job = make_job(sine_behaviour(amplitude=2.0, period_dispatches=8))
    values = [job.dispatch(i)[0].value for i in range(16)]
    assert all(abs(v) <= 2.0 + 1e-9 for v in values)
    assert values[:8] == pytest.approx(values[8:])


def test_time_sine_quantisation_makes_replicas_agree():
    b = time_sine_behaviour(period_us=1_000_000, quantum_us=5_000)
    ctx1 = DispatchContext(10_100, 0, {}, {}, {})
    ctx2 = DispatchContext(13_900, 7, {}, {}, {})  # same 5ms quantum
    assert b(ctx1)["*"] == b(ctx2)["*"]


def test_time_sine_validation():
    with pytest.raises(ConfigurationError):
        time_sine_behaviour(period_us=0)
    with pytest.raises(ConfigurationError):
        time_sine_behaviour(quantum_us=0)
    with pytest.raises(ConfigurationError):
        sine_behaviour(period_dispatches=1)


def test_drain_inputs_empties_event_queue():
    from repro.components.ports import Message

    job = make_job(drain_inputs(counter_behaviour()))
    port = job.port("in")
    for i in range(3):
        port.push(Message("src", "out", float(i), i, 0))
    msgs = job.dispatch(0)
    assert port.queue_length == 0
    assert msgs[0].port == "out"
    assert job.state["consumed"] == [0.0, 1.0, 2.0]


def test_port_lookup_errors():
    job = make_job()
    with pytest.raises(ConfigurationError):
        job.port("ghost")
    with pytest.raises(ConfigurationError):
        job.spec.port("ghost")


def test_job_spec_port_lookup():
    job = make_job()
    assert job.spec.port("out").direction is PortDirection.OUT
