"""Unit tests for virtual networks."""

from __future__ import annotations

import pytest

from repro.components.ports import Message
from repro.components.virtual_network import (
    PortAddress,
    VirtualNetwork,
    VnLink,
)
from repro.errors import ConfigurationError


def make_vn(budget=16):
    return VirtualNetwork(
        "vn-x",
        "x",
        links=(
            VnLink(
                PortAddress("p", "out"),
                (PortAddress("k1", "in"), PortAddress("k2", "in")),
            ),
        ),
        slot_budget=budget,
    )


def msg(job="p", port="out", value=1.0):
    return Message(job, port, value, 1, 0)


def test_routing():
    vn = make_vn()
    dests = vn.route(msg())
    assert [str(d) for d in dests] == ["k1.in", "k2.in"]
    assert vn.messages_routed == 1


def test_unrouted_message():
    vn = make_vn()
    assert vn.route(msg(port="other")) == ()
    assert vn.messages_routed == 0
    assert not vn.has_route(msg(port="other"))
    assert vn.has_route(msg())


def test_duplicate_source_rejected():
    with pytest.raises(ConfigurationError):
        VirtualNetwork(
            "v",
            "x",
            links=(
                VnLink(PortAddress("p", "out"), ()),
                VnLink(PortAddress("p", "out"), ()),
            ),
        )
    vn = make_vn()
    with pytest.raises(ConfigurationError):
        vn.add_link(VnLink(PortAddress("p", "out"), ()))


def test_add_link():
    vn = make_vn()
    vn.add_link(VnLink(PortAddress("q", "out"), (PortAddress("k1", "in2"),)))
    assert len(vn.sources()) == 2


def test_admit_budget():
    vn = make_vn(budget=2)
    msgs = [msg(value=float(i)) for i in range(5)]
    admitted = vn.admit(msgs)
    assert len(admitted) == 2
    assert vn.tx_overflows == 3
    # under budget: untouched
    assert vn.admit(msgs[:2]) == msgs[:2]
    assert vn.tx_overflows == 3


def test_reconfigure_budget():
    vn = make_vn(budget=1)
    vn.reconfigure_budget(10)
    assert vn.slot_budget == 10
    with pytest.raises(ConfigurationError):
        vn.reconfigure_budget(0)
    with pytest.raises(ConfigurationError):
        VirtualNetwork("v", "x", slot_budget=0)
