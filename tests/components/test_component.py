"""Unit tests for the component runtime (hardware FRU)."""

from __future__ import annotations

import pytest

from repro.components.component import Component, ComponentSpec
from repro.components.job import JobSpec, counter_behaviour
from repro.components.partition import PartitionSpec
from repro.components.ports import PortDirection, PortSpec
from repro.components.virtual_network import PortAddress, VirtualNetwork, VnLink
from repro.errors import ConfigurationError
from repro.tta.tdma import TdmaSchedule


def job(name, das):
    return JobSpec(
        name,
        das,
        (PortSpec("out", PortDirection.OUT),),
        behaviour=counter_behaviour(),
    )


def make_component():
    spec = ComponentSpec(
        "comp",
        partitions=(
            PartitionSpec("p1", job("j1", "A"), cpu_share=0.4),
            PartitionSpec("p2", job("j2", "B"), cpu_share=0.4),
        ),
    )
    return Component(spec)


def vns():
    return {
        "vn-A": VirtualNetwork(
            "vn-A", "A", (VnLink(PortAddress("j1", "out"), ()),)
        ),
        "vn-B": VirtualNetwork(
            "vn-B", "B", (VnLink(PortAddress("j2", "out"), ()),)
        ),
    }


def slot():
    return TdmaSchedule(("comp", "other"), 1000).slot_at(0)


def test_structure_queries():
    comp = make_component()
    assert {j.name for j in comp.jobs()} == {"j1", "j2"}
    assert comp.das_names() == frozenset({"A", "B"})
    assert comp.hosts_job("j1") and not comp.hosts_job("ghost")
    assert comp.job("j2").das == "B"
    with pytest.raises(ConfigurationError):
        comp.job("ghost")


def test_cpu_share_overcommit_rejected():
    with pytest.raises(ConfigurationError):
        ComponentSpec(
            "c",
            partitions=(
                PartitionSpec("p1", job("j1", "A"), cpu_share=0.7),
                PartitionSpec("p2", job("j2", "B"), cpu_share=0.7),
            ),
        )


def test_duplicate_partition_or_job_rejected():
    with pytest.raises(ConfigurationError):
        ComponentSpec(
            "c",
            partitions=(
                PartitionSpec("p1", job("j1", "A"), cpu_share=0.2),
                PartitionSpec("p1", job("j2", "B"), cpu_share=0.2),
            ),
        )
    with pytest.raises(ConfigurationError):
        ComponentSpec(
            "c",
            partitions=(
                PartitionSpec("p1", job("j1", "A"), cpu_share=0.2),
                PartitionSpec("p2", job("j1", "B"), cpu_share=0.2),
            ),
        )


def test_build_frame_collects_routed_messages():
    comp = make_component()
    frame = comp.build_frame(slot(), 0, vns())
    assert frame is not None
    assert set(frame.payload) == {"vn-A", "vn-B"}
    assert comp.frames_sent == 1


def test_unrouted_messages_not_in_payload():
    comp = make_component()
    frame = comp.build_frame(slot(), 0, {})
    assert frame.payload == {}


def test_outage_makes_component_silent():
    comp = make_component()
    comp.hardware.transient_outage_until_us = 500
    assert comp.build_frame(slot(), 100, vns()) is None
    assert comp.frames_missed == 1
    assert not comp.operational(100)
    assert comp.operational(500)


def test_permanent_failure_silences_forever():
    comp = make_component()
    comp.hardware.permanently_failed = True
    assert comp.build_frame(slot(), 0, vns()) is None


def test_corrupt_tx_bits_invalidate_crc():
    comp = make_component()
    comp.hardware.corrupt_tx_bits = 2
    frame = comp.build_frame(slot(), 0, vns())
    assert not frame.crc_valid
    assert frame.bit_flips == 2


def test_timing_offset_shifts_send_instant():
    comp = make_component()
    comp.hardware.timing_offset_us = 80.0
    frame = comp.build_frame(slot(), 0, vns())
    assert frame.timing_error_us == pytest.approx(80.0)


def test_restart_clears_transient_state():
    comp = make_component()
    comp.hardware.transient_outage_until_us = 10_000
    comp.hardware.babbling = True
    comp.hardware.corrupt_tx_bits = 3
    comp.restart(5_000)
    assert comp.operational(5_000)
    assert not comp.hardware.babbling
    assert comp.hardware.corrupt_tx_bits == 0
    assert comp.hardware.restarts == 1


def test_restart_does_not_fix_permanent_failure():
    comp = make_component()
    comp.hardware.permanently_failed = True
    comp.restart(0)
    assert not comp.operational(0)


def test_replace_gives_fresh_hardware():
    comp = make_component()
    comp.hardware.permanently_failed = True
    comp.replace(1_000)
    assert comp.operational(1_000)
    assert comp.hardware.replacements == 1


def test_vn_budget_applied_at_frame_build():
    comp = make_component()
    vn = VirtualNetwork(
        "vn-A",
        "A",
        (VnLink(PortAddress("j1", "out"), ()),),
        slot_budget=1,
    )
    # j1 emits one message per dispatch: within budget.
    frame = comp.build_frame(slot(), 0, {"vn-A": vn})
    assert len(frame.payload["vn-A"]) == 1
    assert vn.tx_overflows == 0
