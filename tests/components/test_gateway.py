"""Unit tests for hidden gateway jobs."""

from __future__ import annotations

from repro.components.gateway import gateway_behaviour, make_gateway_job
from repro.components.job import Job
from repro.components.ports import Message, PortDirection, PortKind


def test_gateway_spec_has_matching_ports():
    spec = make_gateway_job("gw", "telematics", {"wheel_in": "wheel_out"})
    names = {(p.name, p.direction) for p in spec.ports}
    assert ("wheel_in", PortDirection.IN) in names
    assert ("wheel_out", PortDirection.OUT) in names


def test_gateway_forwards_state_value():
    spec = make_gateway_job("gw", "telematics", {"a_in": "a_out"})
    job = Job(spec)
    job.port("a_in").push(Message("src", "out", 7.5, 1, 0))
    msgs = job.dispatch(0)
    assert len(msgs) == 1
    assert msgs[0].port == "a_out"
    assert msgs[0].value == 7.5


def test_gateway_emits_nothing_without_input():
    spec = make_gateway_job("gw", "telematics", {"a_in": "a_out"})
    job = Job(spec)
    assert job.dispatch(0) == []


def test_gateway_behaviour_handles_event_ports():
    from repro.components.job import DispatchContext
    from repro.components.ports import Port, PortSpec

    in_port = Port(
        PortSpec("e_in", PortDirection.IN, PortKind.EVENT, queue_capacity=4),
        "gw",
    )
    in_port.push(Message("src", "out", 3.0, 1, 0))
    behaviour = gateway_behaviour({"e_in": "e_out"})
    ctx = DispatchContext(0, 0, {"e_in": in_port}, {}, {})
    assert behaviour(ctx) == {"e_out": 3.0}
    # queue consumed
    assert behaviour(
        DispatchContext(1, 1, {"e_in": in_port}, {}, {})
    ) == {}
