"""Integration-level tests for the cluster runtime."""

from __future__ import annotations

import pytest

from repro.components.cluster import Cluster, ClusterSpec
from repro.components.component import ComponentSpec
from repro.components.das import Criticality, DasSpec
from repro.components.job import JobSpec, counter_behaviour
from repro.components.partition import PartitionSpec
from repro.components.ports import PortDirection, PortSpec
from repro.components.virtual_network import PortAddress, VirtualNetwork, VnLink
from repro.errors import ConfigurationError
from repro.presets import small_cluster
from repro.tta.membership import views_consistent
from repro.units import ms


def test_healthy_run_has_no_anomalies():
    cluster = small_cluster(n_components=4, seed=1)
    cluster.run(ms(200))
    assert cluster.trace.count("delivery.omitted") == 0
    assert cluster.trace.count("delivery.corrupted") == 0
    assert cluster.trace.count("frame.silent") == 0
    assert cluster.trace.count("guardian.blocked") == 0


def test_healthy_run_full_membership_and_consistent_views():
    cluster = small_cluster(n_components=5, seed=2)
    cluster.run(ms(200))
    everyone = frozenset(cluster.components)
    for svc in cluster.memberships.values():
        assert svc.view() == everyone
    assert views_consistent(list(cluster.memberships.values()))


def test_clocks_converge_under_sync():
    cluster = small_cluster(n_components=5, seed=3, drift_ppm=50.0)
    cluster.run(ms(500))
    errors = [
        c.clock.error(cluster.now) for c in cluster.components.values()
    ]
    spread = max(errors) - min(errors)
    assert spread < cluster.time_base.precision_us + 1.0


def test_messages_flow_to_consumer_ports():
    cluster = small_cluster(n_components=3, seed=4)
    cluster.run(ms(100))
    consumer = cluster.job("k1")
    port = consumer.port("in")
    assert port.messages_in > 10
    assert port.overflow_count == 0


def test_run_rounds_advances_time():
    cluster = small_cluster(n_components=3, seed=5)
    cluster.run_rounds(10)
    assert cluster.now == 10 * cluster.schedule.round_length_us


def test_sensor_setter():
    cluster = small_cluster(n_components=3, seed=6)
    cluster.set_sensor("p0", "temp", 33.0)
    assert cluster.job("p0").sensors["temp"] == 33.0


def test_lookup_errors():
    cluster = small_cluster(n_components=3, seed=7)
    with pytest.raises(ConfigurationError):
        cluster.component("ghost")
    with pytest.raises(ConfigurationError):
        cluster.job("ghost")
    with pytest.raises(ConfigurationError):
        cluster.component_of_job("ghost")


def test_start_is_idempotent():
    cluster = small_cluster(n_components=3, seed=8)
    cluster.start()
    cluster.start()
    cluster.run(ms(10))
    # one slot event chain only: slots == elapsed slots, not double
    assert cluster.slots_elapsed == ms(10) // cluster.schedule.slot_length_us + 1


# -- configuration validation ---------------------------------------------------


def _job(name, das="d"):
    return JobSpec(
        name,
        das,
        (PortSpec("out", PortDirection.OUT),),
        behaviour=counter_behaviour(),
    )


def test_unplaced_das_job_rejected():
    spec = ClusterSpec(
        components=(ComponentSpec("c0"),),
        dases=(
            DasSpec("d", Criticality.NON_SAFETY_CRITICAL, (_job("j"),)),
        ),
    )
    with pytest.raises(ConfigurationError):
        Cluster(spec)


def test_duplicate_component_names_rejected():
    with pytest.raises(ConfigurationError):
        ClusterSpec(components=(ComponentSpec("c0"), ComponentSpec("c0")))


def test_vn_encapsulation_violation_rejected():
    job_a = _job("ja", "A")
    job_b = _job("jb", "B")
    spec = ClusterSpec(
        components=(
            ComponentSpec(
                "c0", (PartitionSpec("p", job_a, cpu_share=0.5),)
            ),
            ComponentSpec(
                "c1", (PartitionSpec("p", job_b, cpu_share=0.5),)
            ),
        ),
        dases=(
            DasSpec("A", Criticality.NON_SAFETY_CRITICAL, (job_a,)),
            DasSpec("B", Criticality.NON_SAFETY_CRITICAL, (job_b,)),
        ),
    )
    # vn-A sourcing from a DAS-B job breaks encapsulation.
    bad_vn = VirtualNetwork(
        "vn-A", "A", (VnLink(PortAddress("jb", "out"), ()),)
    )
    with pytest.raises(ConfigurationError):
        Cluster(spec, vns={"vn-A": bad_vn})


def test_vn_referencing_unknown_das_rejected():
    spec = ClusterSpec(components=(ComponentSpec("c0"), ComponentSpec("c1")))
    vn = VirtualNetwork("vn-x", "nope")
    with pytest.raises(ConfigurationError):
        Cluster(spec, vns={"vn-x": vn})


def test_job_placed_twice_rejected():
    job_a = _job("ja", "A")
    spec = ClusterSpec(
        components=(
            ComponentSpec("c0", (PartitionSpec("p", job_a, cpu_share=0.5),)),
            ComponentSpec("c1", (PartitionSpec("p", job_a, cpu_share=0.5),)),
        ),
    )
    with pytest.raises(ConfigurationError):
        Cluster(spec)


def test_local_loopback_delivery():
    """Jobs co-hosted with a producer receive its VN messages locally."""
    from repro.presets import figure10_cluster

    parts = figure10_cluster(seed=44)
    cluster = parts.cluster
    cluster.run(ms(100))
    # C1 and C2 are both hosted on comp2; vn-C routes C1.out -> C2.in.
    msg = cluster.job("C2").port("in").read_state()
    assert msg is not None
    assert msg.source_job == "C1"
