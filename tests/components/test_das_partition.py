"""Unit tests for DAS and partition specifications."""

from __future__ import annotations

import pytest

from repro.components.das import Criticality, DasSpec
from repro.components.job import JobSpec
from repro.components.partition import Partition, PartitionSpec
from repro.components.ports import PortDirection, PortSpec
from repro.errors import ConfigurationError


def job(name, das="d", safety=False):
    return JobSpec(
        name, das, (PortSpec("out", PortDirection.OUT),), safety_critical=safety
    )


def test_das_holds_jobs():
    das = DasSpec("d", Criticality.NON_SAFETY_CRITICAL, (job("a"), job("b")))
    assert das.job_names() == ("a", "b")
    assert das.job("a").name == "a"
    assert not das.is_safety_critical


def test_das_rejects_duplicate_jobs():
    with pytest.raises(ConfigurationError):
        DasSpec("d", Criticality.NON_SAFETY_CRITICAL, (job("a"), job("a")))


def test_das_rejects_foreign_job():
    foreign = job("a", das="other")
    with pytest.raises(ConfigurationError):
        DasSpec("d", Criticality.NON_SAFETY_CRITICAL, (foreign,))


def test_das_criticality_flag_must_match():
    with pytest.raises(ConfigurationError):
        DasSpec("d", Criticality.SAFETY_CRITICAL, (job("a", safety=False),))
    das = DasSpec("d", Criticality.SAFETY_CRITICAL, (job("a", safety=True),))
    assert das.is_safety_critical


def test_das_unknown_job_lookup():
    das = DasSpec("d", Criticality.NON_SAFETY_CRITICAL, (job("a"),))
    with pytest.raises(ConfigurationError):
        das.job("ghost")


def test_partition_hosts_one_job():
    part = Partition(PartitionSpec("p0", job("a"), cpu_share=0.25))
    assert part.job.name == "a"
    assert part.das == "d"
    assert not part.safety_critical


def test_partition_share_validation():
    with pytest.raises(ConfigurationError):
        PartitionSpec("p0", job("a"), cpu_share=0.0)
    with pytest.raises(ConfigurationError):
        PartitionSpec("p0", job("a"), cpu_share=1.5)
