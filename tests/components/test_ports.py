"""Unit + property tests for ports and value specifications."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.components.ports import (
    Message,
    Port,
    PortDirection,
    PortKind,
    PortSpec,
    ValueSpec,
)
from repro.errors import ConfigurationError


def msg(value, seq=1):
    return Message("j", "p", value, seq, 0)


# -- ValueSpec ----------------------------------------------------------------


def test_value_spec_conformance():
    spec = ValueSpec(low=0.0, high=10.0)
    assert spec.conforms(5)
    assert spec.conforms(0.0) and spec.conforms(10.0)
    assert not spec.conforms(-0.1)
    assert not spec.conforms(10.1)
    assert not spec.conforms(float("nan"))
    assert not spec.conforms("not-a-number")


def test_value_spec_marginal_band():
    spec = ValueSpec(low=0.0, high=10.0, margin=0.1)
    assert spec.marginal(0.5) and spec.marginal(9.5)
    assert not spec.marginal(5.0)
    assert not spec.marginal(11.0)  # out of spec is not "marginal"


def test_value_spec_deviation():
    spec = ValueSpec(low=0.0, high=10.0)
    assert spec.deviation(5.0) == 0.0
    assert spec.deviation(15.0) == pytest.approx(0.5)
    assert spec.deviation(-5.0) == pytest.approx(0.5)
    assert math.isinf(spec.deviation(float("nan")))
    assert math.isinf(spec.deviation("x"))


def test_unbounded_spec_never_marginal():
    spec = ValueSpec()
    assert spec.conforms(1e300)
    assert not spec.marginal(1e300)
    assert spec.deviation(1e300) == 0.0


def test_value_spec_validation():
    with pytest.raises(ConfigurationError):
        ValueSpec(low=1.0, high=1.0)
    with pytest.raises(ConfigurationError):
        ValueSpec(margin=0.5)


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_property_deviation_nonnegative_and_zero_iff_conforms(value):
    spec = ValueSpec(low=-10.0, high=10.0)
    dev = spec.deviation(value)
    assert dev >= 0.0
    assert (dev == 0.0) == spec.conforms(value)


# -- ports ----------------------------------------------------------------


def state_port():
    return Port(PortSpec("p", PortDirection.IN, PortKind.STATE), "j")


def event_port(capacity=2):
    return Port(
        PortSpec("p", PortDirection.IN, PortKind.EVENT, queue_capacity=capacity),
        "j",
    )


def test_state_port_overwrite_semantics():
    port = state_port()
    assert port.push(msg(1.0, seq=1))
    assert port.push(msg(2.0, seq=2))
    assert port.read_state().value == 2.0
    # non-consuming
    assert port.read_state().value == 2.0


def test_state_port_rejects_event_ops():
    with pytest.raises(ConfigurationError):
        state_port().pop_event()
    with pytest.raises(ConfigurationError):
        event_port().read_state()


def test_event_port_fifo_and_overflow():
    port = event_port(capacity=2)
    assert port.push(msg(1.0, 1))
    assert port.push(msg(2.0, 2))
    assert not port.push(msg(3.0, 3))  # overflow, newest lost
    assert port.overflow_count == 1
    assert port.pop_event().value == 1.0
    assert port.pop_event().value == 2.0
    assert port.pop_event() is None


def test_event_port_drain():
    port = event_port(capacity=4)
    for i in range(3):
        port.push(msg(float(i), i))
    drained = port.drain()
    assert [m.value for m in drained] == [0.0, 1.0, 2.0]
    assert port.queue_length == 0


def test_resize_queue_changes_capacity():
    port = event_port(capacity=1)
    port.push(msg(1.0, 1))
    assert not port.push(msg(2.0, 2))
    port.resize_queue(3)
    assert port.push(msg(3.0, 3))
    assert port.spec.queue_capacity == 3
    with pytest.raises(ConfigurationError):
        port.resize_queue(0)


def test_counters():
    port = event_port(capacity=8)
    for i in range(5):
        port.push(msg(float(i), i))
    port.pop_event()
    assert port.messages_in == 5
    assert port.messages_out == 1


def test_port_spec_validation():
    with pytest.raises(ConfigurationError):
        PortSpec("p", PortDirection.IN, PortKind.EVENT, queue_capacity=0)
    with pytest.raises(ConfigurationError):
        PortSpec("p", PortDirection.OUT, period_slots=0)


@given(st.lists(st.integers(), min_size=0, max_size=20), st.integers(1, 5))
def test_property_event_queue_never_exceeds_capacity(values, capacity):
    port = event_port(capacity=capacity)
    accepted = sum(1 for i, v in enumerate(values) if port.push(msg(v, i)))
    assert port.queue_length <= capacity
    assert accepted == min(len(values), capacity)
    assert port.overflow_count == len(values) - accepted
