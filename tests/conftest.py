"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.presets import figure10_cluster, small_cluster
from repro.units import ms


@pytest.fixture
def cluster4():
    """A small 4-component cluster (fresh per test)."""
    return small_cluster(n_components=4, seed=11)


@pytest.fixture
def fig10():
    """The Fig. 10 reference cluster parts (fresh per test)."""
    return figure10_cluster(seed=11)


@pytest.fixture
def ran_cluster4(cluster4):
    """cluster4 after 100 ms of healthy operation."""
    cluster4.run(ms(100))
    return cluster4
