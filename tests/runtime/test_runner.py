"""Tests for the ParallelCampaignRunner and its metrics record.

The task callables live at module level so ``spawn`` workers can import
them by reference (tests run with the repo root on ``sys.path``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import pytest

from repro.errors import SimulationError
from repro.runtime.metrics import RunMetrics
from repro.runtime.runner import (
    MAX_WORKERS,
    ParallelCampaignRunner,
    ReplicaTask,
)


@dataclass(frozen=True)
class _Counted:
    value: int
    events_simulated: int


def square_task(replica: ReplicaTask) -> int:
    return replica.index**2 + int(replica.spec)


def counted_task(replica: ReplicaTask) -> _Counted:
    return _Counted(value=replica.index, events_simulated=10 * (replica.index + 1))


def draw_task(replica: ReplicaTask) -> float:
    """First draw of the replica's private stream."""
    return float(replica.rng().random())


def crashy_task(replica: ReplicaTask) -> int:
    """Kill the worker process hard on first execution of index 1.

    A sentinel file marks the first attempt, so the retried chunk
    succeeds — this simulates a transient worker crash (OOM kill).
    """
    sentinel = os.path.join(str(replica.spec), f"crashed-{replica.index}")
    if replica.index == 1 and not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as fh:
            fh.write("x")
        os._exit(17)
    return replica.index


# -- serial path -----------------------------------------------------------


def test_serial_map_without_reduce():
    runner = ParallelCampaignRunner(square_task)
    outcome = runner.run([100, 100, 100], root_seed=0)
    assert outcome.value == (100, 101, 104)
    assert outcome.values() == [100, 101, 104]


def test_reduce_receives_index_order():
    runner = ParallelCampaignRunner(square_task, reduce=list, chunk_size=2)
    outcome = runner.run([0] * 5, root_seed=0)
    assert outcome.value == [0, 1, 4, 9, 16]
    assert [r.index for r in outcome.results] == [0, 1, 2, 3, 4]


def test_metrics_accounting():
    runner = ParallelCampaignRunner(counted_task)
    outcome = runner.run([None] * 4, root_seed=0)
    m = outcome.metrics
    assert m.replicas == 4
    assert m.workers == 1
    assert m.events_simulated == 10 + 20 + 30 + 40
    assert m.events_per_second > 0
    assert m.retries == 0
    assert pytest.approx(sum(m.worker_busy_s.values()), rel=1e-6) == sum(
        r.elapsed_s for r in outcome.results
    )


def test_replica_streams_match_seeds_module():
    from repro.runtime.seeds import replica_rng

    outcome = ParallelCampaignRunner(draw_task).run([None] * 6, root_seed=99)
    expected = [float(replica_rng(99, i).random()) for i in range(6)]
    assert outcome.values() == expected


def rejecting_reduce(values):
    """A fold reducer that rejects empty campaigns (like summarize_campaign)."""
    if not values:
        raise ValueError("cannot reduce an empty campaign")
    return sum(values)


def test_empty_spec_list():
    outcome = ParallelCampaignRunner(square_task).run([], root_seed=0)
    assert outcome.value == ()
    assert outcome.metrics.replicas == 0
    assert outcome.complete
    assert outcome.completeness()["replicas_expected"] == 0


def test_empty_run_never_calls_reduce():
    """run([]) short-circuits instead of handing [] to fold reducers."""
    outcome = ParallelCampaignRunner(square_task, rejecting_reduce).run([])
    assert outcome.value == ()
    assert outcome.results == ()
    # A non-empty run still exercises the reducer.
    assert ParallelCampaignRunner(square_task, rejecting_reduce).run(
        [0, 0]
    ).value == 0 + 1


def test_validation():
    with pytest.raises(ValueError):
        ParallelCampaignRunner(square_task, workers=0)
    with pytest.raises(ValueError):
        ParallelCampaignRunner(square_task, workers=MAX_WORKERS + 1)
    with pytest.raises(ValueError):
        ParallelCampaignRunner(square_task, chunk_size=0)
    with pytest.raises(ValueError):
        ParallelCampaignRunner(square_task, max_retries=-1)


def test_backend_validation():
    with pytest.raises(ValueError, match="backend"):
        ParallelCampaignRunner(square_task, backend="vectorised")
    with pytest.raises(ValueError, match="batch_task"):
        ParallelCampaignRunner(
            square_task, batch_task=lambda tasks, label, capture: None
        )


def test_batched_backend_generic_task_serial_and_pool():
    """backend="batched" auto-wraps a scalar task and stays value-exact
    in both the serial path and the process pool."""
    scalar = ParallelCampaignRunner(square_task).run([5] * 6, root_seed=3)
    for workers in (1, 3):
        batched = ParallelCampaignRunner(
            square_task, workers=workers, chunk_size=2, backend="batched"
        ).run([5] * 6, root_seed=3)
        assert batched.values() == scalar.values()
        assert batched.metrics.backend == "batched"
        assert batched.metrics.workers == workers
    assert scalar.metrics.backend == "scalar"


# -- parallel path ---------------------------------------------------------


def test_parallel_equals_serial_toy_task():
    serial = ParallelCampaignRunner(square_task).run([5] * 9, root_seed=3)
    parallel = ParallelCampaignRunner(square_task, workers=2, chunk_size=2).run(
        [5] * 9, root_seed=3
    )
    assert parallel.value == serial.value
    assert parallel.metrics.workers == 2


def test_worker_crash_is_retried(tmp_path):
    runner = ParallelCampaignRunner(
        crashy_task, workers=2, chunk_size=1, max_retries=2
    )
    outcome = runner.run([str(tmp_path)] * 4, root_seed=0)
    assert outcome.value == (0, 1, 2, 3)
    assert outcome.metrics.retries >= 1
    assert (tmp_path / "crashed-1").exists()


# -- metrics record --------------------------------------------------------


def test_run_metrics_json_roundtrip(tmp_path):
    metrics = RunMetrics.from_results(
        replicas=3,
        workers=2,
        chunk_size=1,
        wall_time_s=2.0,
        retries=1,
        events=[100, 200, 300],
        busy_by_worker={"pid-1": 1.0, "pid-2": 0.5},
    )
    assert metrics.events_simulated == 600
    assert metrics.events_per_second == pytest.approx(300.0)
    assert metrics.worker_utilization["pid-1"] == pytest.approx(0.5)
    path = metrics.write_json(tmp_path / "deep" / "metrics.json")
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert loaded["replicas"] == 3
    assert loaded["retries"] == 1
    assert loaded["worker_busy_s"]["pid-2"] == pytest.approx(0.5)


def test_lost_replica_detected():
    """The runner refuses to reduce an incomplete result set."""

    class Hole(ParallelCampaignRunner):
        def _run_pool(self, tasks, chunk_size, *args, **kwargs):
            results, retries = super()._run_pool(
                tasks, chunk_size, *args, **kwargs
            )
            return results[:-1], retries

    runner = Hole(square_task, workers=2, chunk_size=1)
    with pytest.raises(SimulationError, match="lost replicas"):
        runner.run([0] * 4, root_seed=0)


def test_duplicated_replica_detected():
    """Duplicate indices trip the guard too (not just missing ones)."""

    class Double(ParallelCampaignRunner):
        def _run_pool(self, tasks, chunk_size, *args, **kwargs):
            results, retries = super()._run_pool(
                tasks, chunk_size, *args, **kwargs
            )
            return results + results[:1], retries

    runner = Double(square_task, workers=2, chunk_size=1)
    with pytest.raises(SimulationError, match="lost replicas"):
        runner.run([0] * 4, root_seed=0)
