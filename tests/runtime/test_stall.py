"""Stall detection and resubmission in the live-telemetry pool path.

The acceptance case: a worker that stops heartbeating is flagged
``stall_suspected`` and its chunk resubmitted to a free worker *without
waiting for pool teardown*; the run completes with the same aggregate an
uninterrupted run produces (duplicate execution is safe because results
dedupe by replica index and replica values are pure functions of
``(root_seed, index)``).

The hanging task coordinates through marker files under the spec
directory, like ``test_crash_recovery``:

* ``hung-once``  — created (O_EXCL) by the first execution of replica 0,
  which then blocks; any later execution of replica 0 sees the marker
  and returns immediately — whichever execution loses the race, the
  outcome converges;
* ``release``    — written by the test at teardown so the hung worker
  exits promptly instead of sleeping out its bounded deadline.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.obs.live import LiveEventBus, MemoryLiveSink
from repro.runtime.runner import ParallelCampaignRunner, ReplicaTask

#: Upper bound on how long the hung replica sleeps if never released.
_HANG_DEADLINE_S = 30.0


def hang_once_task(replica: ReplicaTask) -> int:
    base = str(replica.spec)
    if replica.index == 0:
        marker = os.path.join(base, "hung-once")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return replica.index * 10  # the resubmitted duplicate
        os.close(fd)
        release = os.path.join(base, "release")
        deadline = time.monotonic() + _HANG_DEADLINE_S
        while time.monotonic() < deadline and not os.path.exists(release):
            time.sleep(0.05)
    return replica.index * 10


def test_stalled_chunk_is_resubmitted_without_pool_teardown(tmp_path):
    sink = MemoryLiveSink()
    bus = LiveEventBus([sink])
    runner = ParallelCampaignRunner(
        hang_once_task,
        workers=2,
        chunk_size=1,
        max_retries=2,
        retry_backoff_s=0.0,
        stall_timeout_s=2.0,
        stall_poll_s=0.1,
        shutdown_timeout_s=0.5,
    )
    t0 = time.monotonic()
    try:
        outcome = runner.run([str(tmp_path)] * 3, root_seed=0, live=bus)
    finally:
        # Release the hung worker (and reap any leaked pid) promptly.
        with open(
            os.path.join(tmp_path, "release"), "w", encoding="utf-8"
        ) as fh:
            fh.write("x")
    wall = time.monotonic() - t0

    # Bit-identical to an uninterrupted run of the same campaign.
    assert outcome.value == (0, 10, 20)
    assert [r.index for r in outcome.results] == [0, 1, 2]
    assert outcome.complete

    # The stall was flagged and structurally resubmitted: the chunk id
    # of the stall_suspected record was chunk_submitted at least twice.
    kinds = [r["kind"] for r in sink.records]
    assert "stall_suspected" in kinds
    stalls = [r for r in sink.records if r["kind"] == "stall_suspected"]
    assert all(s["action"] == "resubmitted" for s in stalls)
    stalled_cid = stalls[0]["chunk"]
    submissions = [
        r
        for r in sink.records
        if r["kind"] == "chunk_submitted" and r["chunk"] == stalled_cid
    ]
    assert len(submissions) >= 2
    assert outcome.metrics.retries >= 1

    # The run_finished record carries the stall count.
    finished = [r for r in sink.records if r["kind"] == "run_finished"]
    assert len(finished) == 1
    assert finished[0]["stalls"] >= 1

    # "Without waiting for pool teardown": the run completed long before
    # the hung replica's own deadline — the duplicate won while the
    # original was still blocked.
    assert wall < _HANG_DEADLINE_S / 2

    # The abandoned original is either reaped by the bounded shutdown or
    # reported as a leaked pid — never silently lost.  Reap stragglers
    # so the test leaves nothing behind.
    for pid in outcome.metrics.leaked_worker_pids:
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:
            pass


def test_stall_knobs_are_validated():
    with pytest.raises(ValueError, match="stall_timeout_s"):
        ParallelCampaignRunner(hang_once_task, stall_timeout_s=0.0)
    with pytest.raises(ValueError, match="stall_poll_s"):
        ParallelCampaignRunner(hang_once_task, stall_poll_s=0.0)
    with pytest.raises(ValueError, match="straggler_factor"):
        ParallelCampaignRunner(hang_once_task, straggler_factor=1.0)
