"""Crash recovery of the parallel runner: duplicate-resubmission fix,
structured replica failures, retry exhaustion policies and teardown.

The historical bug under regression here: when a worker died while
sibling chunks completed in the same wait batch, the runner resubmitted
chunks whose results it had already recorded, duplicating replicas and
tripping the "runner lost replicas" guard.  The fix pops a chunk from
``pending`` *before* recording its results and dedupes by replica index.

All task callables are module-level so ``spawn`` workers can import
them.  Tasks coordinate through marker files under the spec directory:

* ``exec-<index>-*``  — one per *execution* of a replica (counts runs);
* ``done-<index>-*``  — the replica completed;
* ``crashed``         — the crasher already died once (retry succeeds).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.runtime.metrics import RunMetrics
from repro.runtime.runner import (
    FALLBACK_WORKER,
    SERIAL_WORKER,
    ParallelCampaignRunner,
    ReplicaFailure,
    ReplicaTask,
)

_POLL_S = 0.01
_POLL_DEADLINE_S = 30.0
#: Grace after the last sibling completes, so its future resolves in the
#: parent (and is drained) before the crasher kills the pool.
_GRACE_S = 0.5


def _mark(base: str, prefix: str, index: int) -> None:
    name = f"{prefix}-{index}-{os.getpid()}-{time.time_ns()}"
    with open(os.path.join(base, name), "w", encoding="utf-8") as fh:
        fh.write("x")


def _count(base: str, prefix: str, index: int) -> int:
    return sum(
        1
        for name in os.listdir(base)
        if name.startswith(f"{prefix}-{index}-")
    )


def _wait_for_done(base: str, indices: tuple[int, ...]) -> None:
    deadline = time.monotonic() + _POLL_DEADLINE_S
    while time.monotonic() < deadline:
        if all(_count(base, "done", i) > 0 for i in indices):
            time.sleep(_GRACE_S)
            return
        time.sleep(_POLL_S)


def batch_crash_task(replica: ReplicaTask) -> int:
    """Index 0 kills its worker only after every sibling completed.

    This reproduces the duplicate-resubmission interleaving: by the time
    the pool breaks, the sibling chunks' results are already delivered,
    so a runner that resubmits anything beyond the crashed chunk
    re-executes completed replicas.
    """
    base = str(replica.spec)
    _mark(base, "exec", replica.index)
    if replica.index == 0:
        crashed = os.path.join(base, "crashed")
        if not os.path.exists(crashed):
            _wait_for_done(base, (1, 2, 3))
            with open(crashed, "w", encoding="utf-8") as fh:
                fh.write("x")
            os._exit(23)
    _mark(base, "done", replica.index)
    return replica.index


def always_crash_task(replica: ReplicaTask) -> int:
    """Index 1 kills its worker on every attempt (after siblings finish)."""
    base = str(replica.spec)
    _mark(base, "exec", replica.index)
    if replica.index == 1:
        _wait_for_done(base, (0, 2, 3))
        os._exit(23)
    _mark(base, "done", replica.index)
    return replica.index


def cursed_task(replica: ReplicaTask) -> int:
    """Index 1 raises deterministically on every attempt."""
    if replica.index == 1:
        raise ValueError(f"replica {replica.index} is cursed")
    return replica.index * 10


def flaky_task(replica: ReplicaTask) -> int:
    """Index 2 raises exactly once, then succeeds on retry."""
    if replica.index == 2:
        sentinel = os.path.join(str(replica.spec), "raised-once")
        if not os.path.exists(sentinel):
            with open(sentinel, "w", encoding="utf-8") as fh:
                fh.write("x")
            raise RuntimeError("transient replica failure")
    return replica.index * 10


def parent_only_task(replica: ReplicaTask) -> int:
    """Crashes any process except the parent named in the spec."""
    base, parent_pid = replica.spec
    if os.getpid() != int(parent_pid):
        os._exit(11)
    return replica.index


def high_index_crash_task(replica: ReplicaTask) -> int:
    """Indices >= 2 crash pool workers; the parent runs them fine."""
    base, parent_pid = replica.spec
    if os.getpid() == int(parent_pid):
        return replica.index
    _mark(base, "exec", replica.index)
    if replica.index >= 2:
        _wait_for_done(base, (0, 1))
        os._exit(11)
    _mark(base, "done", replica.index)
    return replica.index


def sleepy_task(base: str) -> int:
    """Plain executor task: announce start, then outlive any timeout."""
    with open(
        os.path.join(base, f"started-{os.getpid()}"), "w", encoding="utf-8"
    ) as fh:
        fh.write("x")
    time.sleep(10.0)
    return os.getpid()


# -- the duplicate-resubmission regression ---------------------------------


def test_crash_amid_completed_siblings_never_duplicates(tmp_path):
    """A worker crash interleaved with completed sibling chunks must
    re-run only the crashed chunk: one result per index, and ``retries``
    counts only the chunk that genuinely re-ran."""
    runner = ParallelCampaignRunner(
        batch_crash_task,
        workers=2,
        chunk_size=1,
        max_retries=2,
        retry_backoff_s=0.0,
    )
    outcome = runner.run([str(tmp_path)] * 4, root_seed=0)
    assert outcome.value == (0, 1, 2, 3)
    assert [r.index for r in outcome.results] == [0, 1, 2, 3]
    assert outcome.complete
    # Only the crashed chunk was resubmitted...
    assert outcome.metrics.retries == 1
    # ...and only its replica executed twice; the drained siblings never
    # re-ran (the historical bug re-executed them and tripped the guard).
    base = str(tmp_path)
    assert _count(base, "exec", 0) == 2
    for sibling in (1, 2, 3):
        assert _count(base, "exec", sibling) == 1


def test_replica_exception_is_retried_to_success(tmp_path):
    """A raising task becomes a ReplicaFailure and is resubmitted; a
    transient failure therefore costs one retry, not the campaign."""
    runner = ParallelCampaignRunner(
        flaky_task,
        workers=2,
        chunk_size=2,
        max_retries=2,
        retry_backoff_s=0.0,
    )
    outcome = runner.run([str(tmp_path)] * 4, root_seed=0)
    assert outcome.value == (0, 10, 20, 30)
    assert outcome.complete
    assert outcome.failures == ()
    assert outcome.metrics.retries == 1
    assert outcome.metrics.replicas_failed == 0


# -- retry exhaustion: serial policy ---------------------------------------


def test_serial_policy_reraises_deterministic_exception(tmp_path):
    """Under the default policy a permanently-raising replica surfaces
    its real exception (from the parent fallback), not a crash wrapper."""
    runner = ParallelCampaignRunner(
        cursed_task,
        workers=2,
        chunk_size=2,
        max_retries=0,
        retry_backoff_s=0.0,
    )
    with pytest.raises(ValueError, match="cursed"):
        runner.run([None] * 4, root_seed=0)


def test_serial_policy_workers1_raises_immediately():
    with pytest.raises(ValueError, match="cursed"):
        ParallelCampaignRunner(cursed_task).run([None] * 4, root_seed=0)


def test_fallback_completes_run_with_distinct_worker_label(tmp_path):
    """When every pool attempt crashes, the parent fallback finishes the
    campaign under its own label — never merged with ``pid-*`` workers
    (a recycled pid could otherwise pollute busy-time accounting)."""
    spec = (str(tmp_path), os.getpid())
    runner = ParallelCampaignRunner(
        parent_only_task,
        workers=2,
        chunk_size=2,
        max_retries=0,
        retry_backoff_s=0.0,
    )
    outcome = runner.run([spec] * 3, root_seed=0)
    assert outcome.value == (0, 1, 2)
    assert outcome.complete
    assert {r.worker for r in outcome.results} == {FALLBACK_WORKER}
    assert set(outcome.metrics.worker_busy_s) == {FALLBACK_WORKER}
    assert FALLBACK_WORKER != SERIAL_WORKER


def test_fallback_label_never_merges_with_pool_workers(tmp_path):
    """Mixed run: one chunk completes in a pool worker, the rest crash
    into the fallback — the metrics keep the two labels separate and the
    busy-time sum still accounts for every executed replica."""
    spec = (str(tmp_path), os.getpid())
    runner = ParallelCampaignRunner(
        high_index_crash_task,
        workers=2,
        chunk_size=2,
        max_retries=0,
        retry_backoff_s=0.0,
    )
    outcome = runner.run([spec] * 4, root_seed=0)
    assert outcome.value == (0, 1, 2, 3)
    labels = {r.worker for r in outcome.results}
    assert FALLBACK_WORKER in labels
    pool_labels = {lab for lab in labels if lab.startswith("pid-")}
    assert pool_labels, "expected at least one chunk to finish in the pool"
    busy = outcome.metrics.worker_busy_s
    assert FALLBACK_WORKER in busy
    assert set(busy) == labels
    assert pytest.approx(sum(busy.values()), rel=1e-6) == sum(
        r.elapsed_s for r in outcome.results
    )


def test_serial_path_uses_serial_label():
    outcome = ParallelCampaignRunner(cursed_task, on_exhausted="salvage").run(
        [None] * 3, root_seed=0
    )
    assert {r.worker for r in outcome.results} == {SERIAL_WORKER}
    assert set(outcome.metrics.worker_busy_s) == {SERIAL_WORKER}


# -- retry exhaustion: salvage policy --------------------------------------


def test_salvage_partial_outcome_for_deterministic_exception():
    runner = ParallelCampaignRunner(
        cursed_task,
        workers=2,
        chunk_size=2,
        max_retries=1,
        retry_backoff_s=0.0,
        on_exhausted="salvage",
    )
    outcome = runner.run([None] * 4, root_seed=0)
    assert not outcome.complete
    assert outcome.value == (0, 20, 30)  # survivors only, index order
    assert [r.index for r in outcome.results] == [0, 2, 3]
    assert [f.index for f in outcome.failures] == [1]
    failure = outcome.failures[0]
    assert failure.error_type == "ValueError"
    assert "cursed" in failure.message
    assert failure.attempts == 2  # first try + one retry
    assert "cursed" in failure.traceback
    report = outcome.completeness()
    assert report["complete"] is False
    assert report["replicas_expected"] == 4
    assert report["replicas_completed"] == 3
    assert report["replicas_failed"] == 1
    assert report["failed_indices"] == [1]
    assert "cursed" in report["failures"][0]
    assert outcome.metrics.replicas_failed == 1
    assert outcome.metrics.retries == 1


def test_salvage_records_worker_crash_as_structured_failure(tmp_path):
    runner = ParallelCampaignRunner(
        always_crash_task,
        workers=2,
        chunk_size=1,
        max_retries=1,
        retry_backoff_s=0.0,
        on_exhausted="salvage",
    )
    outcome = runner.run([str(tmp_path)] * 4, root_seed=0)
    assert not outcome.complete
    assert [r.index for r in outcome.results] == [0, 2, 3]
    assert [f.index for f in outcome.failures] == [1]
    failure = outcome.failures[0]
    assert failure.error_type == "WorkerCrash"
    assert "died" in failure.message
    assert outcome.metrics.replicas_failed == 1


def test_salvage_workers1_captures_exceptions():
    outcome = ParallelCampaignRunner(
        cursed_task, on_exhausted="salvage"
    ).run([None] * 4, root_seed=0)
    assert not outcome.complete
    assert outcome.value == (0, 20, 30)
    assert [f.index for f in outcome.failures] == [1]
    assert outcome.failures[0].worker == SERIAL_WORKER


def test_replica_failure_describe():
    failure = ReplicaFailure(
        index=7,
        error_type="ValueError",
        message="boom",
        traceback="",
        attempts=3,
        worker="pid-42",
    )
    text = failure.describe()
    assert "replica 7" in text
    assert "ValueError" in text
    assert "3 attempt(s)" in text


def test_on_exhausted_validated():
    with pytest.raises(ValueError, match="on_exhausted"):
        ParallelCampaignRunner(cursed_task, on_exhausted="explode")


# -- worker teardown -------------------------------------------------------


def test_shutdown_reports_leaked_workers(tmp_path):
    """A worker stuck in a long task past the shutdown deadline is
    surfaced as a leaked pid instead of being silently left behind."""
    runner = ParallelCampaignRunner(cursed_task, shutdown_timeout_s=0.1)
    ctx = multiprocessing.get_context("spawn")
    executor = ProcessPoolExecutor(max_workers=1, mp_context=ctx)
    try:
        executor.submit(sleepy_task, str(tmp_path))
        deadline = time.monotonic() + _POLL_DEADLINE_S
        while time.monotonic() < deadline:
            if any(
                name.startswith("started-") for name in os.listdir(tmp_path)
            ):
                break
            time.sleep(_POLL_S)
        else:
            pytest.fail("worker never started the task")
        leaked = runner._shutdown_executor(executor)
    finally:
        for name in os.listdir(tmp_path):
            if name.startswith("started-"):
                pid = int(name.split("-", 1)[1])
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
    assert len(leaked) == 1
    assert leaked[0] > 0


def test_metrics_carry_failure_and_leak_fields(tmp_path):
    metrics = RunMetrics.from_results(
        replicas=4,
        workers=2,
        chunk_size=1,
        wall_time_s=1.0,
        retries=0,
        events=[1, 2],
        busy_by_worker={FALLBACK_WORKER: 0.5},
        leaked_worker_pids=(123, 456),
        replicas_failed=1,
        replicas_resumed=2,
    )
    payload = metrics.to_dict()
    assert payload["leaked_worker_pids"] == [123, 456]
    assert payload["replicas_failed"] == 1
    assert payload["replicas_resumed"] == 2
