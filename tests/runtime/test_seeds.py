"""Tests for the per-replica seed stream derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.seeds import (
    replica_rng,
    replica_sequence,
    replica_state_seed,
    root_sequence,
)


def test_matches_numpy_spawn():
    """Child ``i`` is exactly SeedSequence(root).spawn(n)[i]."""
    spawned = np.random.SeedSequence(123).spawn(8)
    for i in (0, 3, 7):
        ours = replica_sequence(123, i)
        assert (
            ours.generate_state(4).tolist()
            == spawned[i].generate_state(4).tolist()
        )


def test_streams_reproducible_and_independent():
    a1 = replica_rng(7, 0).random(8)
    a2 = replica_rng(7, 0).random(8)
    b = replica_rng(7, 1).random(8)
    c = replica_rng(8, 0).random(8)
    assert a1.tolist() == a2.tolist()
    assert a1.tolist() != b.tolist()
    assert a1.tolist() != c.tolist()


def test_stream_independent_of_sibling_count():
    """Replica 2's stream is the same whether 3 or 300 replicas exist."""
    few = [replica_rng(42, i).random() for i in range(3)]
    many = [replica_rng(42, i).random() for i in range(300)]
    assert few == many[:3]


def test_state_seed_properties():
    seeds = {replica_state_seed(5, i) for i in range(200)}
    assert len(seeds) == 200  # distinct per index
    assert all(0 <= s < 2**63 for s in seeds)
    assert replica_state_seed(5, 17) == replica_state_seed(5, 17)
    assert replica_state_seed(5, 17) != replica_state_seed(6, 17)


def test_root_sequence_entropy():
    assert root_sequence(9).entropy == 9


def test_negative_index_rejected():
    with pytest.raises(ValueError):
        replica_sequence(0, -1)
