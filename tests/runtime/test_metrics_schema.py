"""RunMetrics dict schema: version field and exact round-tripping."""

from __future__ import annotations

import pytest

from repro.runtime.metrics import METRICS_SCHEMA_VERSION, RunMetrics


def _metrics() -> RunMetrics:
    return RunMetrics.from_results(
        replicas=6,
        workers=2,
        chunk_size=3,
        wall_time_s=1.25,
        retries=1,
        events=[100, 120, 80],
        busy_by_worker={"pid-10": 0.5, "pid-11": 0.45},
        leaked_worker_pids=(77,),
        replicas_failed=1,
        replicas_resumed=2,
        backend="batched",
    )


def test_to_dict_carries_schema_version():
    payload = _metrics().to_dict()
    assert payload["schema"] == METRICS_SCHEMA_VERSION == 1
    assert payload["backend"] == "batched"
    assert payload["replicas_resumed"] == 2


def test_round_trip_to_dict_from_dict_is_exact():
    payload = _metrics().to_dict()
    rebuilt = RunMetrics.from_dict(payload)
    assert rebuilt.to_dict() == payload


def test_from_dict_rejects_unknown_schema():
    payload = _metrics().to_dict()
    payload["schema"] = 99
    with pytest.raises(ValueError, match="unsupported RunMetrics schema"):
        RunMetrics.from_dict(payload)


def test_from_dict_defaults_optional_fields():
    minimal = {
        "replicas": 2,
        "workers": 1,
        "chunk_size": 2,
        "wall_time_s": 0.5,
        "events_simulated": 10,
        "events_per_second": 20.0,
    }
    metrics = RunMetrics.from_dict(minimal)
    assert metrics.retries == 0
    assert metrics.worker_busy_s == {}
    assert metrics.leaked_worker_pids == ()
    assert metrics.replicas_failed == 0
    assert metrics.replicas_resumed == 0
    assert metrics.backend == "scalar"


def test_round_trip_survives_json(tmp_path):
    import json

    path = _metrics().write_json(tmp_path / "m.json")
    loaded = RunMetrics.from_dict(json.loads(path.read_text()))
    assert loaded.to_dict() == _metrics().to_dict()
