"""The replica-batched SoA backend: pack round-trip and executor identity.

The pack is a lossless struct-of-arrays encoding of campaign replica
results — property tests drive random outcome batches through
``CampaignOutcomePack.from_results``/``unpack`` and require exact
round-trips.  The executor tests pin :func:`run_campaign_batch` against
the scalar chunk executor on real campaign replicas (the full-campaign
differential battery lives in
``tests/integration/test_backend_differential.py``).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alpha_count import AlphaCountBank
from repro.core.trust import TrustBank
from repro.faults.campaign import CampaignReplicaOutcome, CampaignReplicaSpec
from repro.runtime.batch import (
    CampaignOutcomePack,
    ObjectPack,
    SequentialBatchTask,
    run_campaign_batch,
)
from repro.runtime.runner import (
    ReplicaFailure,
    ReplicaResult,
    ReplicaTask,
    _execute_chunk,
)
from repro.runtime.workloads import run_campaign_replica
from repro.units import ms

SPEC = CampaignReplicaSpec(expected_faults=3.0, horizon_us=ms(300))

# -- strategies ------------------------------------------------------------

_MECHANISMS = ("seu", "emi-burst", "connector", "permanent", "sensor")
_TARGETS = ("comp1", "comp2", "comp3", "channel:0")

_plan_event = st.tuples(
    st.sampled_from(_MECHANISMS),
    st.sampled_from(_TARGETS),
    st.integers(min_value=0, max_value=10**9),
)


@st.composite
def _outcomes(draw, index: int) -> CampaignReplicaOutcome:
    """A self-consistent outcome built through the scalar fold."""
    plan = tuple(draw(st.lists(_plan_event, max_size=6)))
    correct = tuple(draw(st.booleans()) for _ in plan)
    injected: dict[str, int] = {}
    attributed: dict[str, int] = {}
    hits = 0
    for (mechanism, _t, _a), ok in zip(plan, correct):
        injected[mechanism] = injected.get(mechanism, 0) + 1
        if ok:
            attributed[mechanism] = attributed.get(mechanism, 0) + 1
            hits += 1
    with_obs = draw(st.booleans())
    return CampaignReplicaOutcome(
        index=index,
        plan_events=plan,
        injected_by_mechanism=tuple(sorted(injected.items())),
        attributed_by_mechanism=tuple(sorted(attributed.items())),
        faults_injected=len(plan),
        faults_attributed=hits,
        verdicts_emitted=draw(st.integers(min_value=0, max_value=20)),
        events_simulated=draw(st.integers(min_value=0, max_value=10**6)),
        obs_counters=(
            {"counters": {"detector.symptoms": draw(st.integers(0, 99))}}
            if with_obs
            else None
        ),
        obs_trace=(
            ({"seq": 0, "kind": "event", "replica": index},) if with_obs else ()
        ),
    )


@st.composite
def _result_batches(draw) -> list[ReplicaResult | ReplicaFailure]:
    n = draw(st.integers(min_value=0, max_value=6))
    fail_at = draw(
        st.sets(st.integers(min_value=0, max_value=max(n - 1, 0)), max_size=2)
    )
    results: list[ReplicaResult | ReplicaFailure] = []
    for i in range(n):
        if i in fail_at:
            results.append(
                ReplicaFailure(
                    index=i,
                    error_type="ValueError",
                    message=f"boom {i}",
                    traceback="tb",
                    attempts=1,
                    worker="serial",
                )
            )
            continue
        outcome = draw(_outcomes(i))
        results.append(
            ReplicaResult(
                index=i,
                value=outcome,
                events=outcome.events_simulated,
                elapsed_s=draw(
                    st.floats(
                        min_value=0.0,
                        max_value=10.0,
                        allow_nan=False,
                        allow_infinity=False,
                    )
                ),
                worker=draw(st.sampled_from(("serial", "pid-100", "pid-200"))),
            )
        )
    return results


# -- SoA pack/unpack round-trip (property) ---------------------------------


@settings(max_examples=60, deadline=None)
@given(_result_batches())
def test_pack_roundtrip_is_exact(results):
    """from_results -> unpack reproduces every result bit for bit."""
    pack = CampaignOutcomePack.from_results(results)
    assert pack.unpack() == sorted(results, key=lambda r: r.index)


def test_pack_roundtrip_empty():
    pack = CampaignOutcomePack.from_results([])
    assert pack.batch_size == 0
    assert pack.unpack() == []


def test_pack_rejects_inconsistent_outcomes():
    base = CampaignReplicaOutcome(
        index=0,
        plan_events=(("seu", "comp1", 100),),
        injected_by_mechanism=(("seu", 1),),
        attributed_by_mechanism=(("seu", 1),),
        faults_injected=1,
        faults_attributed=1,
        verdicts_emitted=1,
        events_simulated=10,
    )

    def wrap(outcome):
        return ReplicaResult(
            index=0, value=outcome, events=10, elapsed_s=0.1, worker="serial"
        )

    with pytest.raises(ValueError, match="faults_injected"):
        CampaignOutcomePack.from_results([wrap(replace(base, faults_injected=2))])
    with pytest.raises(ValueError, match="faults_attributed"):
        CampaignOutcomePack.from_results(
            [wrap(replace(base, faults_attributed=0))]
        )
    with pytest.raises(TypeError, match="ObjectPack"):
        CampaignOutcomePack.from_results([wrap("not-an-outcome")])


# -- bank vector exports ---------------------------------------------------


def test_alpha_scores_vector_projects_scores():
    bank = AlphaCountBank(decay=0.5, threshold=2.0)
    bank.observe("comp1", failed=True)
    bank.observe("comp1", failed=True)
    bank.observe("comp2", failed=True)
    bank.observe("comp2", failed=False)
    order = ("comp1", "comp2", "never-seen")
    vec = bank.scores_vector(order)
    scores = bank.scores()
    assert vec.dtype == np.float64 and vec.shape == (3,)
    assert vec[0] == scores["comp1"] == 2.0
    assert vec[1] == scores["comp2"] == 0.5
    assert vec[2] == 0.0  # fresh AlphaCount default


def test_trust_values_vector_projects_values():
    bank = TrustBank(demerit=0.5)
    bank.update("comp1", 1.0, now_us=10)
    bank.update("comp2", 0.0, now_us=10)
    order = ("comp1", "comp2", "never-seen")
    vec = bank.values_vector(order)
    values = bank.values()
    assert vec.dtype == np.float64 and vec.shape == (3,)
    assert vec[0] == values["comp1"] == 0.5
    assert vec[1] == values["comp2"] == 1.0
    assert vec[2] == 1.0  # fresh TrustLevel default


# -- the SoA executor on real campaign replicas ----------------------------


def _tasks(n: int, spec=SPEC, root_seed: int = 7) -> list[ReplicaTask]:
    return [
        ReplicaTask(index=i, root_seed=root_seed, spec=spec) for i in range(n)
    ]


def test_batch_executor_matches_scalar_chunk():
    tasks = _tasks(3)
    scalar = _execute_chunk(
        run_campaign_replica, tasks, worker_label="serial"
    )
    pack = run_campaign_batch(tasks, worker_label="serial")
    batched = pack.unpack()
    assert [r.value for r in batched] == [r.value for r in scalar]
    assert [r.index for r in batched] == [r.index for r in scalar]
    assert [r.events for r in batched] == [r.events for r in scalar]
    assert all(r.worker == "serial" for r in batched)


def test_batch_executor_state_matrices():
    tasks = _tasks(3)
    pack = run_campaign_batch(tasks, worker_label="serial")
    n_fru = len(pack.state_frus)
    assert pack.state_frus == tuple(sorted(pack.state_frus))
    assert pack.alpha_scores.shape == (3, n_fru)
    assert pack.trust_values.shape == (3, n_fru)
    assert (pack.alpha_scores >= 0.0).all()
    assert (pack.trust_values > 0.0).all()
    assert (pack.trust_values <= 1.0).all()
    # Per-replica fold redundancy: CSR offsets and matrices agree.
    assert pack.event_offsets[-1] == pack.event_mechanism.shape[0]
    assert (
        pack.injected.sum(axis=1) == np.diff(pack.event_offsets)
    ).all()
    assert (pack.attributed <= pack.injected).all()


def test_batch_executor_captures_failures():
    # A string spec has no campaign fields -> AttributeError inside the
    # replica; with capture_errors the batch isolates it exactly like
    # the scalar chunk executor does.
    tasks = _tasks(3)
    tasks[1] = ReplicaTask(index=1, root_seed=7, spec="garbage")
    pack = run_campaign_batch(tasks, worker_label="serial", capture_errors=True)
    out = pack.unpack()
    assert [r.index for r in out] == [0, 1, 2]
    assert isinstance(out[1], ReplicaFailure)
    assert out[1].error_type == "AttributeError"
    scalar = _execute_chunk(
        run_campaign_replica, tasks, worker_label="serial", capture_errors=True
    )
    assert out[0].value == scalar[0].value
    assert out[2].value == scalar[2].value
    with pytest.raises(AttributeError):
        run_campaign_batch(tasks, worker_label="serial", capture_errors=False)


def test_batch_executor_empty_batch():
    pack = run_campaign_batch([], worker_label="serial")
    assert pack.batch_size == 0
    assert pack.unpack() == []


# -- the generic object pack -----------------------------------------------


def _square_task(replica: ReplicaTask) -> int:
    return replica.index**2


def test_sequential_batch_task_wraps_scalar_semantics():
    tasks = [ReplicaTask(index=i, root_seed=0) for i in range(4)]
    wrapped = SequentialBatchTask(_square_task)
    pack = wrapped(tasks, "serial", False)
    assert isinstance(pack, ObjectPack)
    scalar = _execute_chunk(_square_task, tasks, "serial", False)
    # elapsed_s is wall clock and differs between any two runs.
    assert [replace(r, elapsed_s=0.0) for r in pack.unpack()] == [
        replace(r, elapsed_s=0.0) for r in scalar
    ]
