"""Checkpoint ledger: durability, tamper tolerance and the resume
determinism contract.

The acceptance case of the crash-proofing issue lives here: a campaign
that is interrupted and resumed from its ledger produces **bit-identical**
aggregates — and identical canonical obs digests — to an uninterrupted
run, at ``workers=1`` and ``workers=4`` alike.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults.campaign import CampaignReplicaSpec
from repro.obs import trace_digest
from repro.runtime.checkpoint import (
    CheckpointLedger,
    load_ledger,
    read_header,
    spec_digest,
)
from repro.runtime.runner import ParallelCampaignRunner, ReplicaTask
from repro.runtime.seeds import stream_fingerprint
from repro.runtime.workloads import run_random_campaigns
from repro.units import ms

OBS_SPEC = CampaignReplicaSpec(
    expected_faults=3.0,
    horizon_us=ms(300),
    obs_enabled=True,
    obs_trace=True,
)


def draw_task(replica: ReplicaTask) -> float:
    """First draw of the replica's private stream (spawn-picklable)."""
    return float(replica.rng().random())


def _ledger_lines(path) -> list[dict]:
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


def _truncate_to_first_chunk(src, dst) -> int:
    """Copy header + first chunk line only; return replicas kept."""
    kept = []
    replicas_kept = 0
    for record, line in zip(
        _ledger_lines(src), src.read_text(encoding="utf-8").splitlines()
    ):
        if record["kind"] == "header":
            kept.append(line)
        elif record["kind"] == "chunk":
            kept.append(line)
            replicas_kept = len(record["indices"])
            break
    dst.write_text("\n".join(kept) + "\n", encoding="utf-8")
    return replicas_kept


def _obs_digest(outcome) -> str:
    """Canonical digest over all replica trace records, index order."""
    return trace_digest(
        record
        for result in outcome.results
        for record in result.value.obs_trace
    )


# -- ledger mechanics ------------------------------------------------------


def test_spec_digest_identity():
    specs = [CampaignReplicaSpec(horizon_us=ms(300))] * 3
    assert spec_digest(1, specs) == spec_digest(1, list(specs))
    assert spec_digest(1, specs) != spec_digest(2, specs)
    assert spec_digest(1, specs) != spec_digest(1, specs[:2])
    assert spec_digest(1, specs) != spec_digest(
        1, [CampaignReplicaSpec(horizon_us=ms(400))] * 3
    )


def test_ledger_roundtrip(tmp_path):
    path = tmp_path / "ledger.jsonl"
    runner = ParallelCampaignRunner(draw_task, chunk_size=2)
    outcome = runner.run([None] * 5, root_seed=7, checkpoint=path)
    state = load_ledger(path)
    assert sorted(state.results_by_index) == [0, 1, 2, 3, 4]
    assert state.sessions == 1
    assert state.skipped_lines == 0
    for result in outcome.results:
        assert state.results_by_index[result.index].value == result.value
    meta = state.meta
    assert meta["root_seed"] == 7
    assert meta["replicas"] == 5
    assert meta["chunk_size"] == 2
    assert meta["spec_digest"] == spec_digest(7, [None] * 5)
    records = _ledger_lines(path)
    assert records[0]["kind"] == "header"
    assert records[-1]["kind"] == "close"
    assert records[-1]["complete"] is True
    assert records[-1]["completed"] == 5


def test_resume_of_complete_ledger_executes_nothing(tmp_path):
    path = tmp_path / "ledger.jsonl"
    runner = ParallelCampaignRunner(draw_task, chunk_size=2)
    first = runner.run([None] * 5, root_seed=7, checkpoint=path)
    second = runner.run(
        [None] * 5, root_seed=7, checkpoint=path, resume=True
    )
    assert second.values() == first.values()
    m = second.metrics
    assert m.replicas_resumed == 5
    assert m.events_simulated == 0  # nothing executed this session
    assert m.worker_busy_s == {}
    kinds = [r["kind"] for r in _ledger_lines(path)]
    assert kinds.count("resume") == 1
    assert kinds.count("close") == 2


def test_interrupted_then_resumed_equivalence_toy(tmp_path):
    """Truncated ledger (simulated crash) + resume == uninterrupted,
    for both a serial and a pooled resume."""
    reference = ParallelCampaignRunner(draw_task, chunk_size=2).run(
        [None] * 8, root_seed=13
    )
    full = tmp_path / "full.jsonl"
    ParallelCampaignRunner(draw_task, chunk_size=2).run(
        [None] * 8, root_seed=13, checkpoint=full
    )
    for workers in (1, 3):
        trunc = tmp_path / f"trunc-w{workers}.jsonl"
        kept = _truncate_to_first_chunk(full, trunc)
        assert 0 < kept < 8
        resumed = ParallelCampaignRunner(
            draw_task, workers=workers, chunk_size=2
        ).run([None] * 8, root_seed=13, checkpoint=trunc, resume=True)
        assert resumed.values() == reference.values()
        assert resumed.metrics.replicas_resumed == kept


def test_corrupted_tail_is_skipped_and_reexecuted(tmp_path):
    path = tmp_path / "ledger.jsonl"
    runner = ParallelCampaignRunner(draw_task, chunk_size=2)
    first = runner.run([None] * 5, root_seed=7, checkpoint=path)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"kind": "chunk", "payload": "AAAA", "sha2')  # torn write
        fh.write("\n")
        fh.write(
            json.dumps(
                {
                    "kind": "chunk",
                    "indices": [9],
                    "payload": "AAAA",
                    "sha256": "0" * 64,
                    "streams": {},
                }
            )
            + "\n"
        )
    state = load_ledger(path)
    assert state.skipped_lines == 2
    assert sorted(state.results_by_index) == [0, 1, 2, 3, 4]
    resumed = runner.run(
        [None] * 5, root_seed=7, checkpoint=path, resume=True
    )
    assert resumed.values() == first.values()
    assert resumed.metrics.replicas_resumed == 5


def test_stream_fingerprint_guard_forces_reexecution(tmp_path):
    """A chunk whose replica carries the wrong seed-stream fingerprint
    is not trusted: the replica re-executes and the aggregate is still
    exactly the uninterrupted one."""
    path = tmp_path / "ledger.jsonl"
    runner = ParallelCampaignRunner(draw_task, chunk_size=1)
    first = runner.run([None] * 4, root_seed=7, checkpoint=path)
    lines = path.read_text(encoding="utf-8").splitlines()
    doctored = []
    tampered = False
    for line in lines:
        record = json.loads(line)
        if record.get("kind") == "chunk" and not tampered:
            index = record["indices"][0]
            record["streams"][str(index)] = "f" * 32
            line = json.dumps(record, sort_keys=True)
            tampered = True
        doctored.append(line)
    path.write_text("\n".join(doctored) + "\n", encoding="utf-8")
    state = load_ledger(path)
    assert state.skipped_lines == 1
    assert len(state.results_by_index) == 3
    resumed = runner.run(
        [None] * 4, root_seed=7, checkpoint=path, resume=True
    )
    assert resumed.values() == first.values()
    assert resumed.metrics.replicas_resumed == 3


def test_resume_rejects_mismatched_campaign(tmp_path):
    path = tmp_path / "ledger.jsonl"
    runner = ParallelCampaignRunner(draw_task, chunk_size=2)
    runner.run([None] * 5, root_seed=7, checkpoint=path)
    with pytest.raises(ConfigurationError, match="root_seed"):
        runner.run([None] * 5, root_seed=8, checkpoint=path, resume=True)
    with pytest.raises(ConfigurationError, match="replicas"):
        runner.run([None] * 6, root_seed=7, checkpoint=path, resume=True)
    with pytest.raises(ConfigurationError, match="spec_digest"):
        runner.run(["x"] * 5, root_seed=7, checkpoint=path, resume=True)


def test_fresh_run_truncates_stale_ledger(tmp_path):
    """Without resume=True an existing ledger is overwritten, never
    silently mixed into the new campaign."""
    path = tmp_path / "ledger.jsonl"
    runner = ParallelCampaignRunner(draw_task, chunk_size=2)
    runner.run([None] * 5, root_seed=7, checkpoint=path)
    fresh = runner.run([None] * 3, root_seed=9, checkpoint=path)
    assert fresh.metrics.replicas_resumed == 0
    meta = read_header(path)
    assert meta["root_seed"] == 9
    assert meta["replicas"] == 3


def test_header_validation(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("", encoding="utf-8")
    with pytest.raises(ConfigurationError, match="empty"):
        load_ledger(empty)
    garbage = tmp_path / "garbage.jsonl"
    garbage.write_text("not json at all\n", encoding="utf-8")
    with pytest.raises(ConfigurationError, match="header"):
        load_ledger(garbage)
    headless = tmp_path / "headless.jsonl"
    headless.write_text('{"kind": "chunk"}\n', encoding="utf-8")
    with pytest.raises(ConfigurationError, match="header"):
        load_ledger(headless)
    futuristic = tmp_path / "future.jsonl"
    futuristic.write_text(
        json.dumps({"kind": "header", "version": 99}) + "\n",
        encoding="utf-8",
    )
    with pytest.raises(ConfigurationError, match="version"):
        load_ledger(futuristic)
    missing = tmp_path / "missing.jsonl"
    with pytest.raises(ConfigurationError, match="cannot read"):
        load_ledger(missing)


def test_ledger_open_records_command_provenance(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger, preloaded = CheckpointLedger.open(
        path,
        root_seed=3,
        specs=[None] * 2,
        chunk_size=1,
        workers=1,
        resume=False,
        command="mc",
        params={"seed": 3, "replicas": 2},
    )
    ledger.close(completed=0, failed=0)
    assert preloaded == {}
    meta = read_header(path)
    assert meta["command"] == "mc"
    assert meta["params"] == {"seed": 3, "replicas": 2}


def test_stream_fingerprint_shape():
    fp = stream_fingerprint(7, 3)
    assert len(fp) == 32
    int(fp, 16)  # hex
    assert fp != stream_fingerprint(7, 4)
    assert fp != stream_fingerprint(8, 3)
    assert fp == stream_fingerprint(7, 3)


# -- the acceptance case: full-campaign equivalence ------------------------


def test_resumed_campaign_bit_identical_with_obs_digests(tmp_path):
    """Interrupted-then-resumed ≡ uninterrupted ≡ workers=1, including
    canonical obs trace digests, at workers=1 and workers=4."""
    reference = run_random_campaigns(
        6, root_seed=11, spec=OBS_SPEC, workers=1, chunk_size=2
    )
    reference_digest = _obs_digest(reference)
    full = tmp_path / "full.jsonl"
    checkpointed = run_random_campaigns(
        6,
        root_seed=11,
        spec=OBS_SPEC,
        workers=1,
        chunk_size=2,
        checkpoint=str(full),
    )
    # Checkpointing itself must not perturb the campaign.
    assert checkpointed.value == reference.value
    assert _obs_digest(checkpointed) == reference_digest
    for workers in (1, 4):
        trunc = tmp_path / f"trunc-w{workers}.jsonl"
        kept = _truncate_to_first_chunk(full, trunc)
        assert 0 < kept < 6
        resumed = run_random_campaigns(
            6,
            root_seed=11,
            spec=OBS_SPEC,
            workers=workers,
            chunk_size=2,
            checkpoint=str(trunc),
            resume=True,
        )
        # Bit-identical aggregate: full CampaignSummary equality covers
        # plan digest, attribution tables and merged obs counters.
        assert resumed.value == reference.value
        assert _obs_digest(resumed) == reference_digest
        assert resumed.metrics.replicas_resumed == kept
        assert resumed.metrics.workers == workers


def test_resumed_batched_campaign_bit_identical(tmp_path):
    """The PR-5 acceptance case, replayed under ``backend="batched"``.

    The scalar run is the reference: a batched run that checkpoints,
    crashes and resumes (serially and pooled) must still land on the
    scalar aggregates and canonical obs digests.
    """
    reference = run_random_campaigns(
        6, root_seed=11, spec=OBS_SPEC, workers=1, chunk_size=2
    )
    reference_digest = _obs_digest(reference)
    full = tmp_path / "full.jsonl"
    checkpointed = run_random_campaigns(
        6,
        root_seed=11,
        spec=OBS_SPEC,
        workers=1,
        chunk_size=2,
        backend="batched",
        checkpoint=str(full),
    )
    assert checkpointed.value == reference.value
    assert _obs_digest(checkpointed) == reference_digest
    for workers in (1, 4):
        trunc = tmp_path / f"trunc-w{workers}.jsonl"
        kept = _truncate_to_first_chunk(full, trunc)
        assert 0 < kept < 6
        resumed = run_random_campaigns(
            6,
            root_seed=11,
            spec=OBS_SPEC,
            workers=workers,
            chunk_size=2,
            backend="batched",
            checkpoint=str(trunc),
            resume=True,
        )
        assert resumed.value == reference.value
        assert _obs_digest(resumed) == reference_digest
        assert resumed.metrics.replicas_resumed == kept
        assert resumed.metrics.backend == "batched"


def test_mid_batch_resume_skips_completed_replicas(tmp_path):
    """A resume whose preloaded replicas straddle a batch boundary never
    re-runs them.

    The ledger is written with chunk_size=4 (replicas 0–3 complete); the
    resume re-chunks at chunk_size=3, so batch [3, 4, 5] is *partially*
    preloaded.  The runner must hand the batch executor only the fresh
    replicas — proven by the events_simulated accounting, which counts
    executed replicas only.
    """
    spec = CampaignReplicaSpec(expected_faults=3.0, horizon_us=ms(300))
    reference = run_random_campaigns(
        6, root_seed=11, spec=spec, workers=1, chunk_size=4
    )
    full = tmp_path / "full.jsonl"
    run_random_campaigns(
        6,
        root_seed=11,
        spec=spec,
        workers=1,
        chunk_size=4,
        backend="batched",
        checkpoint=str(full),
    )
    trunc = tmp_path / "trunc.jsonl"
    kept = _truncate_to_first_chunk(full, trunc)
    assert kept == 4
    resumed = run_random_campaigns(
        6,
        root_seed=11,
        spec=spec,
        workers=1,
        chunk_size=3,
        backend="batched",
        checkpoint=str(trunc),
        resume=True,
    )
    assert resumed.value == reference.value
    assert resumed.metrics.replicas_resumed == 4
    fresh_events = sum(
        result.events for result in reference.results if result.index >= 4
    )
    assert resumed.metrics.events_simulated == fresh_events
