"""Serial-equivalence guarantees of the parallel runtime.

The contract under test: for the same root seed, any worker count
produces **bit-identical** aggregates — and a different root seed
produces a genuinely different campaign.  These tests spawn real worker
processes, so they are the slowest in the suite; the workloads are kept
small (sub-second horizons) to bound the cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fleet_sim import simulate_diagnosed_fleet
from repro.analysis.scenarios import CATALOGUE, run_campaign
from repro.core.fleet import synthesize_fleet_parallel
from repro.errors import AnalysisError
from repro.faults.campaign import CampaignReplicaSpec
from repro.runtime.workloads import run_random_campaigns
from repro.units import ms

SPEC = CampaignReplicaSpec(expected_faults=3.0, horizon_us=ms(400))


def test_campaign_workers_1_vs_4_identical():
    """The ISSUE acceptance case: workers=4 == workers=1, bit for bit."""
    serial = run_random_campaigns(6, root_seed=11, spec=SPEC, workers=1)
    parallel = run_random_campaigns(6, root_seed=11, spec=SPEC, workers=4)
    assert serial.value == parallel.value  # full CampaignSummary equality
    assert parallel.metrics.workers == 4
    assert len(parallel.metrics.worker_busy_s) >= 2


def test_campaign_obs_counters_aggregate_identically_across_workers():
    """The obs acceptance case: merged counters match workers=1 exactly,
    and replica trace records survive the reduce with their tags."""
    spec = CampaignReplicaSpec(
        expected_faults=3.0,
        horizon_us=ms(400),
        obs_enabled=True,
        obs_trace=True,
    )
    serial = run_random_campaigns(6, root_seed=11, spec=spec, workers=1)
    parallel = run_random_campaigns(6, root_seed=11, spec=spec, workers=4)
    assert serial.value.obs_counters is not None
    assert serial.value.obs_counters == parallel.value.obs_counters
    assert serial.value == parallel.value
    # Enabling obs must not perturb the campaign itself.
    baseline = run_random_campaigns(6, root_seed=11, spec=SPEC, workers=1)
    assert baseline.value.plan_digest == serial.value.plan_digest
    assert baseline.value.events_simulated == serial.value.events_simulated
    # Replica-tagged trace records come back through the reduce.
    for result in parallel.results:
        assert result.value.obs_trace, "replica returned no trace records"
        assert {
            record["replica"] for record in result.value.obs_trace
        } == {result.index}


def test_campaign_provenance_aggregates_identically_across_workers():
    """The schema-v2 acceptance case: per-stage latency histograms and
    chain-coverage counters merge bit-identically for any worker count."""
    spec = CampaignReplicaSpec(
        expected_faults=3.0,
        horizon_us=ms(400),
        obs_enabled=True,
        obs_provenance=True,
    )
    serial = run_random_campaigns(6, root_seed=11, spec=spec, workers=1)
    parallel = run_random_campaigns(6, root_seed=11, spec=spec, workers=4)
    counters = serial.value.obs_counters
    assert counters is not None
    assert counters == parallel.value.obs_counters
    assert serial.value == parallel.value
    # The fold actually produced stage-latency and coverage aggregates.
    assert any(
        key.startswith("provenance.stage_latency_us{")
        for key in counters["histograms"]
    )
    chains = {
        key: value
        for key, value in counters["counters"].items()
        if key.startswith("provenance.chains{")
    }
    assert sum(chains.values()) >= 6  # at least one chain per replica
    # Lineage must not perturb the campaign itself.
    baseline = run_random_campaigns(6, root_seed=11, spec=SPEC, workers=1)
    assert baseline.value.plan_digest == serial.value.plan_digest
    assert baseline.value.events_simulated == serial.value.events_simulated


def test_campaign_different_root_seed_different_plans():
    a = run_random_campaigns(4, root_seed=1, spec=SPEC, workers=1)
    b = run_random_campaigns(4, root_seed=2, spec=SPEC, workers=1)
    assert a.value.plan_digest != b.value.plan_digest


def test_campaign_chunking_does_not_change_summary():
    """Chunk layout is an execution detail, not a statistical one."""
    a = run_random_campaigns(5, root_seed=4, spec=SPEC, workers=1, chunk_size=1)
    b = run_random_campaigns(5, root_seed=4, spec=SPEC, workers=1, chunk_size=5)
    assert a.value == b.value


def test_diagnosed_fleet_workers_equivalence():
    kwargs = dict(
        seed=21, fault_probability=0.7, drive_duration_us=ms(300)
    )
    serial = simulate_diagnosed_fleet(4, workers=1, **kwargs)
    parallel = simulate_diagnosed_fleet(4, workers=2, **kwargs)
    assert np.array_equal(serial.report.counts, parallel.report.counts)
    assert serial.report.hot_types == parallel.report.hot_types
    assert serial.vehicles_with_fault == parallel.vehicles_with_fault
    assert serial.vehicles_detected == parallel.vehicles_detected
    assert parallel.metrics is not None
    assert parallel.metrics.replicas == 4


def test_catalogue_campaign_workers_equivalence():
    scenarios = CATALOGUE[:3]
    serial = run_campaign(scenarios, seeds=(7,), workers=1)
    parallel = run_campaign(scenarios, seeds=(7,), workers=2)
    assert serial.score.matrix.rows() == parallel.score.matrix.rows()
    assert serial.score.matrix.labels() == parallel.score.matrix.labels()
    assert serial.score.matched == parallel.score.matched
    assert serial.score.missed == parallel.score.missed
    assert (
        serial.score.spurious_verdicts == parallel.score.spurious_verdicts
    )
    assert serial.integrated_cost.removals == parallel.integrated_cost.removals
    assert (
        serial.integrated_cost.nff_removals
        == parallel.integrated_cost.nff_removals
    )
    assert serial.integrated_cost.actions == parallel.integrated_cost.actions
    assert serial.obd_cost.actions == parallel.obd_cost.actions
    # serial keeps the full runs; parallel cannot ship them across spawn
    assert len(serial.runs) == 3
    assert parallel.runs == ()
    assert parallel.metrics is not None


def test_catalogue_campaign_rejects_foreign_scenarios_in_parallel():
    from repro.analysis.scenarios import Scenario
    from repro.core.fault_model import FaultClass

    foreign = Scenario(
        "not-in-catalogue", lambda inj: None, ms(100), FaultClass.COMPONENT_INTERNAL
    )
    with pytest.raises(AnalysisError):
        run_campaign((foreign,), seeds=(1,), workers=2)


def test_synthetic_fleet_sharding_equivalence():
    kwargs = dict(
        n_job_types=10, mean_failures_per_vehicle=0.5, shard_vehicles=250
    )
    serial = synthesize_fleet_parallel(3, 1_000, workers=1, **kwargs)
    parallel = synthesize_fleet_parallel(3, 1_000, workers=2, **kwargs)
    assert np.array_equal(serial.value.counts, parallel.value.counts)
    assert serial.value.counts.shape == (1_000, 10)
    assert serial.value.job_types == parallel.value.job_types
