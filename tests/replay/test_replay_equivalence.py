"""Replay-equivalence differential battery.

The identity contract of ``repro whatif``: a splice-replay of a stored
baseline with a cause removed is **bit-identical** to a fresh full
campaign run with the same cause removed — same summary (verdict totals,
per-mechanism folds, plan digest, merged obs counters with the
provenance stage-latency histograms), same wall-free per-replica
outcomes — at any worker count and under either execution backend.  The
``events_simulated``/``replicas_resumed`` metrics prove that only the
DAG-affected replicas actually re-ran.

The hypothesis block is ``derandomize=True`` over the shared strategy
space in ``tests/_differential.py`` — a fixed, replayable corpus, same
convention as the backend and store batteries.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replay import load_baseline, whatif
from tests._differential import (
    FUZZ_CHUNK,
    FUZZ_EXPECTED_FAULTS,
    FUZZ_SEED,
    FULL_OBS_SPEC,
    fuzz_spec,
    run_campaign,
    wall_free,
)

pytestmark = pytest.mark.differential


def _checkpoint_baseline(tmp_path, *, replicas=4, seed=11, spec=FULL_OBS_SPEC):
    """Run one checkpointed mc campaign and load it back as a baseline."""
    ledger = tmp_path / "baseline.ckpt"
    params = {
        "replicas": replicas,
        "expected_faults": spec.expected_faults,
        "horizon_ms": spec.horizon_us // 1000,
        "trace": spec.obs_trace,
        "provenance": spec.obs_provenance,
    }
    outcome = run_campaign(
        replicas=replicas,
        seed=seed,
        spec=spec,
        checkpoint=ledger,
        checkpoint_meta={"command": "mc", "params": params},
    )
    return outcome, load_baseline(ledger)


def _first_selector(baseline, replica=0):
    mechanism, target, at_us = baseline.outcome(replica).plan_events[0]
    return f"r{replica}:{mechanism}@{target}@{at_us}"


def _fresh(baseline, *, suppress=(), onas=(), workers=1, backend="scalar"):
    """A full fresh campaign of the rewritten spec — the reference."""
    spec = replace(
        baseline.spec, suppress_faults=tuple(suppress), disable_onas=tuple(onas)
    )
    return run_campaign(
        backend,
        replicas=baseline.replicas,
        seed=baseline.root_seed,
        spec=spec,
        workers=workers,
    )


# -- identity across workers and backends -----------------------------------


@pytest.mark.parametrize(
    ("workers", "backend"),
    [(1, "scalar"), (4, "scalar"), (1, "batched")],
    ids=["serial", "workers4", "batched"],
)
def test_whatif_equals_fresh_run(tmp_path, workers, backend):
    """Splice-replay ≡ fresh full run with the fault removed, exactly."""
    _, baseline = _checkpoint_baseline(tmp_path)
    selector = _first_selector(baseline)
    result = whatif(
        baseline,
        suppress_faults=(selector,),
        workers=workers,
        backend=backend,
    )
    fresh = _fresh(
        baseline, suppress=(selector,), workers=workers, backend=backend
    )
    # Summary equality covers verdict totals, per-mechanism folds, the
    # plan digest and the merged obs-counter snapshot (which includes
    # the provenance stage-latency histograms).
    assert result.counterfactual_summary == fresh.value
    assert result.counterfactual_summary.obs_counters == fresh.value.obs_counters


def test_whatif_per_replica_outcomes_equal_fresh(tmp_path):
    """Wall-free per-replica outcomes of replay and fresh run match."""
    outcome, baseline = _checkpoint_baseline(tmp_path)
    selector = _first_selector(baseline)
    result = whatif(baseline, suppress_faults=(selector,))
    fresh = _fresh(baseline, suppress=(selector,))
    # Rebuild the replayed campaign's per-replica view: affected come
    # from the engine's diff inputs, spliced come from the baseline.
    fresh_by_index = {r.index: r for r in fresh.results}
    for index in result.spliced:
        spliced = baseline.results[index]
        ref = fresh_by_index[index]
        assert wall_free_one(spliced) == wall_free_one(ref)
    assert result.counterfactual_summary == fresh.value


def wall_free_one(result):
    from repro.obs import trace_digest

    return replace(result.value, obs_trace=trace_digest(result.value.obs_trace))


def test_whatif_splice_proof(tmp_path):
    """events_simulated/replicas_resumed prove only affected replicas ran."""
    _, baseline = _checkpoint_baseline(tmp_path)
    selector = _first_selector(baseline)
    result = whatif(baseline, suppress_faults=(selector,))
    assert result.affected == (0,)
    assert result.affected_by == "plan"
    assert result.spliced == (1, 2, 3)
    assert result.metrics.replicas_resumed == 3
    # Fresh-only event accounting: exactly the affected replica's events.
    affected_events = result.counterfactual_summary.events_simulated - sum(
        baseline.outcome(i).events_simulated for i in result.spliced
    )
    assert result.replayed_events == affected_events
    assert result.replayed_events < result.baseline_events


def test_whatif_without_ona_equals_fresh(tmp_path):
    """ONA disabling replays to the same bytes as a fresh disabled run."""
    _, baseline = _checkpoint_baseline(tmp_path)
    result = whatif(baseline, disable_onas=("isolated-transient",))
    fresh = _fresh(baseline, onas=("isolated-transient",))
    # Full tracing is on, so every replica re-runs (trace-wide rule).
    assert result.affected_by == "trace"
    assert result.affected == tuple(range(baseline.replicas))
    assert result.counterfactual_summary == fresh.value


def test_whatif_ona_counters_affected_set(tmp_path):
    """Counters-only baselines re-run exactly the replicas that fired.

    ``mc --provenance`` (no ``--trace``) records per-replica counter
    snapshots but no trace stream — the exact-counters affected set.
    """
    spec = replace(FULL_OBS_SPEC, obs_enabled=False, obs_trace=False)
    _, baseline = _checkpoint_baseline(tmp_path, spec=spec)
    fired = [
        index
        for index in range(baseline.replicas)
        for key, value in (
            baseline.outcome(index).obs_counters or {}
        )["counters"].items()
        if key.startswith("ona.triggers{")
        and "ona=isolated-transient" in key
        and value
    ]
    result = whatif(baseline, disable_onas=("isolated-transient",))
    assert result.affected_by == "counters"
    assert result.affected == tuple(sorted(set(fired)))
    fresh = _fresh(baseline, onas=("isolated-transient",))
    assert result.counterfactual_summary == fresh.value


def test_whatif_store_baseline_equals_fresh(tmp_path):
    """Store-backed baselines replay to the same bytes as fresh runs."""
    spec = replace(
        FULL_OBS_SPEC,
        obs_enabled=False,
        obs_trace=False,
        obs_provenance=False,
    )
    replicas, seed = 4, 11
    run_campaign(
        replicas=replicas,
        seed=seed,
        spec=spec,
        store=str(tmp_path),
        store_meta={
            "campaign_id": "c1",
            "format": "json",
            "command": "mc",
            "params": {
                "replicas": replicas,
                "expected_faults": spec.expected_faults,
                "horizon_ms": spec.horizon_us // 1000,
            },
        },
    )
    baseline = load_baseline(tmp_path)
    assert baseline.source == "store"
    selector = _first_selector(baseline)
    result = whatif(baseline, suppress_faults=(selector,))
    fresh = _fresh(baseline, suppress=(selector,))
    assert result.counterfactual_summary == fresh.value
    assert result.metrics.replicas_resumed == len(result.spliced)


# -- fixed-corpus fuzz ------------------------------------------------------


@settings(max_examples=6, deadline=None, derandomize=True)
@given(
    seed=FUZZ_SEED,
    replicas=st.integers(min_value=1, max_value=4),
    chunk=FUZZ_CHUNK,
    expected_faults=FUZZ_EXPECTED_FAULTS,
    backend=st.sampled_from(("scalar", "batched")),
)
def test_fuzz_whatif_equals_fresh(
    tmp_path_factory, seed, replicas, chunk, expected_faults, backend
):
    """Random baselines: splice-replay always equals the fresh rerun."""
    tmp_path = tmp_path_factory.mktemp("replay-fuzz")
    spec = fuzz_spec(expected_faults, True, trace=True)
    _, baseline = _checkpoint_baseline(
        tmp_path, replicas=replicas, seed=seed, spec=spec
    )
    events = baseline.outcome(replicas - 1).plan_events
    if not events:
        selectors = ("r0:seu",)  # may match nothing: full-splice path
    else:
        mechanism, target, at_us = events[0]
        selectors = (f"r{replicas - 1}:{mechanism}@{target}@{at_us}",)
    result = whatif(baseline, suppress_faults=selectors, backend=backend)
    fresh = _fresh(baseline, suppress=selectors, backend=backend)
    assert result.counterfactual_summary == fresh.value
    assert result.metrics.replicas_resumed == len(result.spliced)
