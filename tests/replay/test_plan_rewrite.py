"""Property tests of the counterfactual plan rewrite.

The rewrite layer (``repro.faults.suppress`` + the spec fields
``suppress_faults``/``disable_onas``) must be *surgical*: suppressing a
fault that was never sampled is a byte-identical no-op (the sampler
consumes the same RNG draws, FRU collision slots and fault ids either
way), suppression is idempotent, suppressing every sampled event leaves
a fault-free campaign, and rewritten specs round-trip through both
durable artefacts (checkpoint ledger header, CSR store columns).
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.campaign import CampaignReplicaSpec
from repro.faults.suppress import (
    matching_events,
    parse_selector,
    parse_selectors,
    selectors_for_replica,
)
from repro.errors import ConfigurationError
from repro.runtime.checkpoint import load_ledger, spec_digest
from repro.units import ms
from tests._differential import (
    FUZZ_EXPECTED_FAULTS,
    FUZZ_SEED,
    run_campaign,
    wall_free,
)

pytestmark = pytest.mark.differential

SPEC = CampaignReplicaSpec(expected_faults=3.0, horizon_us=ms(250))


def _suppressed(spec, selectors):
    return replace(spec, suppress_faults=tuple(selectors))


# -- selector grammar -------------------------------------------------------


def test_selector_round_trip():
    for text in (
        "seu",
        "seu@component:comp3",
        "seu@component:comp3@1500",
        "r2:emi-burst@component:loom-channel-0@99",
        "r0:sensor",
    ):
        assert str(parse_selector(text)) == text


@pytest.mark.parametrize(
    "bad", ["", "r:seu", "rX:seu", "seu@t@notanint", "r1:", "@", "seu@a@1@2"]
)
def test_selector_rejects_bad_grammar(bad):
    with pytest.raises(ConfigurationError):
        parse_selector(bad)


def test_replica_scoping():
    selectors = ("r1:seu", "emi-burst")
    assert [str(s) for s in selectors_for_replica(selectors, 0)] == [
        "emi-burst"
    ]
    assert [str(s) for s in selectors_for_replica(selectors, 1)] == [
        "r1:seu",
        "emi-burst",
    ]


# -- no-op / idempotence / total suppression --------------------------------


@settings(max_examples=6, deadline=None, derandomize=True)
@given(seed=FUZZ_SEED, expected_faults=FUZZ_EXPECTED_FAULTS)
def test_suppressing_absent_fault_is_noop(seed, expected_faults):
    """A selector that matches nothing leaves every byte unchanged.

    ``job-crash`` is a real mechanism name but absent from the default
    sampling mix, so it can never appear in a sampled plan.
    """
    spec = replace(SPEC, expected_faults=expected_faults)
    baseline = run_campaign(replicas=3, seed=seed, spec=spec)
    noop = run_campaign(
        replicas=3, seed=seed, spec=_suppressed(spec, ("job-crash",))
    )
    assert noop.value == baseline.value
    assert wall_free(noop) == wall_free(baseline)


@settings(max_examples=6, deadline=None, derandomize=True)
@given(seed=FUZZ_SEED)
def test_suppression_is_idempotent(seed):
    """Suppressing a selector twice equals suppressing it once."""
    baseline = run_campaign(replicas=2, seed=seed, spec=SPEC)
    events = baseline.results[0].value.plan_events
    selector = (
        f"r0:{events[0][0]}@{events[0][1]}@{events[0][2]}"
        if events
        else "r0:seu"
    )
    once = run_campaign(
        replicas=2, seed=seed, spec=_suppressed(SPEC, (selector,))
    )
    twice = run_campaign(
        replicas=2, seed=seed, spec=_suppressed(SPEC, (selector, selector))
    )
    assert twice.value == once.value
    assert wall_free(twice) == wall_free(once)


@settings(max_examples=6, deadline=None, derandomize=True)
@given(seed=FUZZ_SEED, expected_faults=FUZZ_EXPECTED_FAULTS)
def test_suppressing_every_event_leaves_fault_free_campaign(
    seed, expected_faults
):
    """Suppressing each sampled event yields the fault-free baseline."""
    spec = replace(SPEC, expected_faults=expected_faults)
    baseline = run_campaign(replicas=2, seed=seed, spec=spec)
    selectors = tuple(
        f"r{r.index}:{mechanism}@{target}@{at_us}"
        for r in baseline.results
        for mechanism, target, at_us in r.value.plan_events
    )
    if not selectors:
        return  # nothing sampled: already fault-free
    empty = run_campaign(
        replicas=2, seed=seed, spec=_suppressed(spec, selectors)
    )
    assert empty.value.faults_injected == 0
    assert empty.value.faults_attributed == 0
    for r in empty.results:
        assert r.value.plan_events == ()
    # matching_events agrees: every baseline event was covered.
    for r in baseline.results:
        assert matching_events(
            selectors, r.index, r.value.plan_events
        ) == list(r.value.plan_events)


# -- durable round-trips ----------------------------------------------------


@settings(max_examples=4, deadline=None, derandomize=True)
@given(seed=FUZZ_SEED)
def test_rewritten_spec_round_trips_through_checkpoint_header(
    tmp_path_factory, seed
):
    """suppress/disable fields survive the ledger's spec digest binding."""
    tmp = tmp_path_factory.mktemp("rewrite-ckpt")
    ledger = tmp / "c.ckpt"
    spec = replace(
        SPEC,
        suppress_faults=("r0:seu@component:comp3@1500", "emi-burst"),
        disable_onas=("wearout",),
    )
    outcome = run_campaign(
        replicas=2,
        seed=seed,
        spec=spec,
        checkpoint=ledger,
        checkpoint_meta={"command": "mc", "params": {}},
    )
    state = load_ledger(ledger)
    assert state.meta["spec_digest"] == spec_digest(seed, [spec] * 2)
    # A different rewrite binds to a different digest — the ledger can
    # never silently resume the wrong counterfactual.
    other = replace(spec, suppress_faults=("emi-burst",))
    assert state.meta["spec_digest"] != spec_digest(seed, [other] * 2)
    # The recorded per-replica results are the run's own, verbatim.
    assert {
        i: r.value for i, r in state.results_by_index.items()
    } == {r.index: r.value for r in outcome.results}


@settings(max_examples=4, deadline=None, derandomize=True)
@given(seed=FUZZ_SEED)
def test_rewritten_plan_round_trips_through_store_columns(
    tmp_path_factory, seed
):
    """Suppressed events never leak into the CSR plan_events columns."""
    from repro.storage.store import CampaignStore

    tmp = tmp_path_factory.mktemp("rewrite-store")
    baseline = run_campaign(replicas=2, seed=seed, spec=SPEC)
    events = baseline.results[0].value.plan_events
    selectors = (
        (f"r0:{events[0][0]}@{events[0][1]}@{events[0][2]}",)
        if events
        else ("r0:seu",)
    )
    spec = _suppressed(SPEC, selectors)
    outcome = run_campaign(
        replicas=2,
        seed=seed,
        spec=spec,
        store=str(tmp),
        store_meta={"campaign_id": "c1", "format": "json"},
    )
    part = CampaignStore(tmp).parts()[0]
    table = part.table("plan_events")
    stored = {}
    for replica, ordinal, mechanism, target, at_us in zip(
        table["replica"],
        table["ordinal"],
        table["mechanism"],
        table["target"],
        table["at_us"],
    ):
        stored.setdefault(int(replica), []).append(
            (int(ordinal), (str(mechanism), str(target), int(at_us)))
        )
    for r in outcome.results:
        rows = tuple(e for _o, e in sorted(stored.get(r.index, [])))
        assert rows == r.value.plan_events
        assert not matching_events(selectors, r.index, rows)


def test_parse_selectors_validates_each():
    with pytest.raises(ConfigurationError):
        parse_selectors(("seu", "r?:bad"))
