"""``repro whatif`` CLI tests: golden report, JSON contract, end-to-end.

The report renderer is pinned byte-for-byte by
``tests/data/golden_whatif_report.txt`` (regeneration recipe in
:func:`regenerate`) — like ``repro query``, a whatif report contains no
wall-clock values, machine identifiers or absolute paths, so the golden
pins renderer *and* replay semantics at once.  The end-to-end test runs
the real ``mc → checkpoint → whatif`` pipeline through subprocesses.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.replay import load_baseline, render_whatif_report, whatif
from tests._differential import FULL_OBS_SPEC, run_campaign

pytestmark = pytest.mark.differential

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "golden_whatif_report.txt"

#: The golden campaign and rewrite, fixed forever.
GOLDEN_SEED = 11
GOLDEN_REPLICAS = 4
GOLDEN_SELECTOR = None  # derived from the plan: first event of replica 0


def _write_baseline(tmp_path: Path):
    ledger = tmp_path / "golden.ckpt"
    params = {
        "replicas": GOLDEN_REPLICAS,
        "expected_faults": FULL_OBS_SPEC.expected_faults,
        "horizon_ms": FULL_OBS_SPEC.horizon_us // 1000,
        "trace": True,
        "provenance": True,
    }
    run_campaign(
        replicas=GOLDEN_REPLICAS,
        seed=GOLDEN_SEED,
        spec=FULL_OBS_SPEC,
        checkpoint=ledger,
        checkpoint_meta={"command": "mc", "params": params},
    )
    return ledger


def _golden_report(tmp_path: Path) -> str:
    baseline = load_baseline(_write_baseline(tmp_path))
    mechanism, target, at_us = baseline.outcome(0).plan_events[0]
    selector = f"r0:{mechanism}@{target}@{at_us}"
    return render_whatif_report(
        whatif(baseline, suppress_faults=(selector,))
    )


def test_whatif_report_matches_golden(tmp_path):
    """The rendered report is byte-stable across runs and hosts."""
    assert _golden_report(tmp_path) == GOLDEN_PATH.read_text(encoding="utf-8")


def regenerate() -> None:
    """Regenerate the golden after a *deliberate* semantic change::

        PYTHONPATH=src:. python -c \\
          "from tests.replay.test_whatif_cli import regenerate; regenerate()"
    """
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        report = _golden_report(Path(tmp))
    GOLDEN_PATH.write_text(report, encoding="utf-8")
    print(f"regenerated {GOLDEN_PATH}: {len(report.splitlines())} lines")


# -- in-process CLI contract -------------------------------------------------


def test_whatif_usage_errors(tmp_path, capsys):
    ledger = _write_baseline(tmp_path)
    # No rewrite and no scan: usage error, rc 2.
    assert main(["whatif", str(ledger)]) == 2
    assert "needs a rewrite" in capsys.readouterr().err
    # Scan and explicit rewrite are mutually exclusive: rc 2.
    assert (
        main(
            ["whatif", str(ledger), "--scan", "onas", "--without-ona", "wearout"]
        )
        == 2
    )
    # Missing baseline: rc 1 with a ConfigurationError message.
    assert main(["whatif", str(tmp_path / "no.ckpt"), "--without-fault", "seu"]) == 1
    assert "does not exist" in capsys.readouterr().err
    # Unknown ONA class: rc 1.
    assert main(["whatif", str(ledger), "--without-ona", "nope"]) == 1
    assert "nope" in capsys.readouterr().err
    # Bad selector grammar: rc 1.
    assert main(["whatif", str(ledger), "--without-fault", "r?:bad"]) == 1


def test_whatif_json_contract(tmp_path, capsys):
    ledger = _write_baseline(tmp_path)
    baseline = load_baseline(ledger)
    mechanism, target, at_us = baseline.outcome(0).plan_events[0]
    selector = f"r0:{mechanism}@{target}@{at_us}"
    assert (
        main(["whatif", str(ledger), "--without-fault", selector, "--json"])
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["affected"] == [0]
    assert payload["affected_by"] == "plan"
    assert payload["spliced"] == [1, 2, 3]
    assert payload["events"]["replicas_resumed"] == 3
    assert payload["events"]["replayed"] < payload["events"]["baseline"]
    assert payload["rewrite"]["without_faults"] == [selector]
    assert set(payload["deltas"]) == {
        "faults_injected",
        "faults_attributed",
        "attribution_accuracy",
        "nff_ratio",
        "verdicts_emitted",
    }


def test_whatif_scan_json(tmp_path, capsys):
    ledger = _write_baseline(tmp_path)
    assert main(["whatif", str(ledger), "--scan", "onas", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["mode"] == "onas"
    assert len(payload["entries"]) == 8
    kinds = {entry["kind"] for entry in payload["entries"]}
    assert kinds == {"ona"}


# -- end-to-end subprocess pipeline -----------------------------------------


def _repro(args, cwd):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_mc_checkpoint_whatif_end_to_end(tmp_path):
    """The real pipeline: mc writes a ledger, whatif replays it."""
    mc = _repro(
        [
            "mc",
            "--replicas",
            "3",
            "--horizon-ms",
            "200",
            "--seed",
            "7",
            "--provenance",
            "--checkpoint",
            "camp.ckpt",
        ],
        tmp_path,
    )
    assert mc.returncode == 0, mc.stderr
    baseline = load_baseline(tmp_path / "camp.ckpt")
    mechanism, target, at_us = baseline.outcome(0).plan_events[0]
    selector = f"r0:{mechanism}@{target}@{at_us}"

    text = _repro(
        ["whatif", "camp.ckpt", "--without-fault", selector], tmp_path
    )
    assert text.returncode == 0, text.stderr
    assert "counterfactual replay (whatif)" in text.stdout
    assert f"rewrite: without-fault {selector}" in text.stdout

    as_json = _repro(
        ["whatif", "camp.ckpt", "--without-fault", selector, "--json"],
        tmp_path,
    )
    assert as_json.returncode == 0, as_json.stderr
    payload = json.loads(as_json.stdout)
    assert payload["affected"] == [0]
    assert payload["events"]["replicas_resumed"] == 2
    # Cross-process determinism: the in-process engine answers the same.
    result = whatif(baseline, suppress_faults=(selector,))
    assert payload["counterfactual_summary"] == json.loads(
        json.dumps(result.counterfactual_summary.to_dict(), sort_keys=True)
    )
