"""``repro query`` CLI tests, including the sim-free import guarantee.

The acceptance property of the query path is that it answers from the
stored columns alone: a subprocess runs the real ``python -m repro
query`` entry point against a populated store and then asserts that none
of the simulator modules ever entered ``sys.modules``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.__main__ import main
from repro.faults.campaign import CampaignReplicaOutcome
from repro.runtime.runner import ReplicaResult, RunOutcome
from repro.storage import write_run

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Simulation stack — importing any of these during a query is a bug.
FORBIDDEN_MODULES = (
    "repro.sim.engine",
    "repro.presets",
    "repro.components.cluster",
    "repro.faults.injector",
    "repro.diagnosis.diag_das",
)


def _populate(root: Path, campaigns=("c001", "c002")) -> None:
    for i, campaign in enumerate(campaigns):
        outcome = CampaignReplicaOutcome(
            index=0,
            plan_events=(("seu", "comp1", 100),),
            injected_by_mechanism=(("seu", 1),),
            attributed_by_mechanism=(("seu", 1),) if i % 2 == 0 else (),
            faults_injected=1,
            faults_attributed=1 if i % 2 == 0 else 0,
            verdicts_emitted=2,
            events_simulated=40,
            alpha_state=(("comp1", 1.5),),
            trust_state=(("comp1", 0.75),),
        )
        run = RunOutcome(
            value=SimpleNamespace(plan_digest=f"{i:x}" * 64, obs_counters=None),
            results=(
                ReplicaResult(
                    index=0,
                    value=outcome,
                    events=40,
                    elapsed_s=0.1,
                    worker="serial",
                ),
            ),
            metrics=None,
            failures=(),
        )
        write_run(
            root,
            run,
            root_seed=3 + i,
            spec_digest=f"{i:x}" * 64,
            meta={"campaign_id": campaign, "format": "json"},
        )


def test_query_subprocess_never_imports_the_simulator(tmp_path):
    """End-to-end ``python -m repro query report`` on a bare interpreter."""
    _populate(tmp_path)
    script = (
        "import runpy, sys\n"
        f"sys.argv = ['repro', 'query', 'report', '--store', {str(tmp_path)!r}]\n"
        "try:\n"
        "    runpy.run_module('repro.__main__', run_name='__main__')\n"
        "except SystemExit as exc:\n"
        "    assert exc.code in (0, None), f'exit {exc.code}'\n"
        f"loaded = [m for m in sys.modules if m in {FORBIDDEN_MODULES!r}]\n"
        "assert not loaded, f'simulator imported during query: {loaded}'\n"
        "print('SIM-FREE-OK')\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    assert "SIM-FREE-OK" in proc.stdout
    assert "stored campaigns" in proc.stdout


def test_query_report_prints_sections(tmp_path, capsys):
    _populate(tmp_path)
    assert main(["query", "report", "--store", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "stored campaigns" in out
    assert "attribution by mechanism" in out
    assert "accuracy drift across campaigns" in out


@pytest.mark.parametrize(
    ("what", "probe"),
    [
        ("campaigns", "faults_injected"),
        ("nff", "nff_ratio"),
        ("confusion", "mechanism"),
        ("drift", "drift"),
        ("latency", None),
        ("scan", "skipped"),
    ],
)
def test_query_json_views_are_parseable(tmp_path, capsys, what, probe):
    _populate(tmp_path)
    assert main(["query", what, "--store", str(tmp_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    if probe is not None:
        assert probe in json.dumps(payload)


def test_query_campaign_filter(tmp_path, capsys):
    _populate(tmp_path)
    assert main(
        ["query", "nff", "--store", str(tmp_path), "--campaign", "c002"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {
        "faults_injected": 1,
        "faults_attributed": 0,
        "nff_ratio": 1.0,
    }


def test_query_without_store_is_usage_error(capsys):
    assert main(["query", "report"]) == 2
    assert "--store" in capsys.readouterr().err


def test_query_missing_store_dir_fails_cleanly(tmp_path, capsys):
    assert main(["query", "report", "--store", str(tmp_path / "nope")]) == 1
    err = capsys.readouterr().err
    assert "does not exist" in err


def test_query_empty_store_fails_cleanly(tmp_path, capsys):
    assert main(["query", "report", "--store", str(tmp_path)]) == 1
    assert "no campaign parts" in capsys.readouterr().err


def test_store_bad_campaign_id_fails_fast(tmp_path, capsys):
    """An unusable store target is rejected before any simulation."""
    rc = main(
        [
            "--store",
            str(tmp_path / "s"),
            "--campaign-id",
            "../evil",
            "mc",
            "--replicas",
            "1",
        ]
    )
    assert rc == 1
    err = capsys.readouterr().err
    assert "store setup failed" in err
    assert not (tmp_path / "s").exists()


@pytest.mark.skipif(
    __import__("repro.storage", fromlist=["parquet_available"]).parquet_available(),
    reason="pyarrow is installed",
)
def test_store_format_parquet_without_pyarrow_fails_fast(tmp_path, capsys):
    rc = main(
        [
            "--store",
            str(tmp_path / "s"),
            "--store-format",
            "parquet",
            "mc",
            "--replicas",
            "1",
        ]
    )
    assert rc == 1
    assert "pyarrow" in capsys.readouterr().err


def test_mc_store_cli_writes_a_queryable_part(tmp_path, capsys):
    """The write path end to end: ``mc --store`` then ``query nff``."""
    store = tmp_path / "store"
    rc = main(
        [
            "--seed",
            "11",
            "--store",
            str(store),
            "--campaign-id",
            "cli-test",
            "--store-format",
            "json",
            "mc",
            "--replicas",
            "2",
            "--horizon-ms",
            "250",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "columnar store part written" in out
    assert main(["query", "campaigns", "--store", str(store)]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 1
    assert rows[0]["campaign"] == "cli-test"
    assert rows[0]["replicas"] == 2
