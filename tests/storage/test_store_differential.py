"""Store-vs-reduce differential battery.

``repro query`` promises that aggregates computed from the *stored*
columns — NFF ratio, the per-mechanism confusion table, the provenance
stage-latency percentiles — are exactly equal to the same aggregates
derived from the in-memory :class:`CampaignSummary` reduce that wrote
the part.  This battery runs identical campaigns through the serial
path, the process pool (``workers=4``) and the replica-batched backend,
stores each run, and fails on any divergence between the store-backed
query answer and the in-memory answer.

The hypothesis block is ``derandomize=True``: a fixed, replayable fuzz
corpus drawn from the shared strategy space in
``tests/_differential.py``.  The report renderer is pinned
byte-for-byte by ``tests/data/golden_query_report.txt`` (regeneration
recipe in :func:`regenerate`).
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.campaign import CampaignReplicaSpec
from repro.obs.provenance import histogram_quantile
from repro.runtime.workloads import run_random_campaigns
from repro.storage import CampaignStore
from repro.storage.query import (
    STAGE_LATENCY_PREFIX,
    accuracy_drift,
    campaign_summaries,
    confusion,
    nff_ratio,
    render_query_report,
    stage_latency,
)
from repro.units import ms
from tests._differential import (
    FUZZ_CHUNK,
    FUZZ_EXPECTED_FAULTS,
    FUZZ_SEED,
    PROVENANCE_SPEC,
    fuzz_spec,
)

pytestmark = pytest.mark.differential

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "golden_query_report.txt"

#: The golden corpus: three campaigns, fixed seeds, provenance on.
GOLDEN_SPEC = CampaignReplicaSpec(
    expected_faults=3.0,
    horizon_us=ms(250),
    obs_enabled=True,
    obs_provenance=True,
)
GOLDEN_CAMPAIGNS = (("c001", 101), ("c002", 102), ("c003", 103))


def _store_run(
    root,
    *,
    workers=1,
    backend="scalar",
    seed=11,
    replicas=6,
    chunk=2,
    campaign="c1",
    spec=PROVENANCE_SPEC,
):
    return run_random_campaigns(
        replicas,
        root_seed=seed,
        spec=spec,
        workers=workers,
        chunk_size=chunk,
        backend=backend,
        store=str(root),
        store_meta={"campaign_id": campaign, "format": "json"},
    )


def _expected_from_summary(summary) -> dict:
    """The in-memory reduce's answers, shaped like the query module's."""
    injected = summary.faults_injected
    attributed = summary.faults_attributed
    attributed_by = dict(summary.attributed_by_mechanism)
    return {
        "nff": {
            "faults_injected": injected,
            "faults_attributed": attributed,
            "nff_ratio": (injected - attributed) / injected if injected else 0.0,
        },
        "confusion": [
            {
                "mechanism": mechanism,
                "injected": count,
                "attributed": attributed_by.get(mechanism, 0),
                "accuracy": (
                    attributed_by.get(mechanism, 0) / count if count else 0.0
                ),
            }
            for mechanism, count in sorted(summary.injected_by_mechanism)
        ],
    }


def _expected_latency(summary) -> list[dict]:
    """Stage percentiles straight from the reduce's merged histograms."""
    rows = []
    histograms = (summary.obs_counters or {}).get("histograms", {})
    for key in sorted(histograms):
        if not key.startswith(STAGE_LATENCY_PREFIX):
            continue
        data = histograms[key]
        labels = dict(
            item.split("=", 1)
            for item in key[len(STAGE_LATENCY_PREFIX) : -1].split(",")
        )
        rows.append(
            {
                "cls": labels.get("cls", "?"),
                "stage": labels.get("stage", "?"),
                "count": data["count"],
                "p50_us": histogram_quantile(data, 0.5),
                "p90_us": histogram_quantile(data, 0.9),
                "mean_us": data["sum"] / data["count"] if data["count"] else 0.0,
            }
        )
    return rows


def _assert_store_equals_reduce(store: CampaignStore, summary) -> None:
    expected = _expected_from_summary(summary)
    assert nff_ratio(store) == expected["nff"]
    assert confusion(store) == expected["confusion"]
    assert stage_latency(store) == _expected_latency(summary)
    rows = campaign_summaries(store)
    assert len(rows) == 1
    assert rows[0]["faults_injected"] == summary.faults_injected
    assert rows[0]["faults_attributed"] == summary.faults_attributed
    assert rows[0]["events_simulated"] == summary.events_simulated
    assert rows[0]["verdicts_emitted"] == summary.verdicts_emitted
    assert rows[0]["replicas"] == summary.replicas
    assert rows[0]["complete"] is True


# -- deterministic battery: serial, pooled, batched ------------------------


@pytest.mark.parametrize(
    ("workers", "backend"),
    [(1, "scalar"), (4, "scalar"), (1, "batched")],
    ids=["serial", "workers4", "batched"],
)
def test_store_aggregates_equal_reduce(tmp_path, workers, backend):
    """Stored-column aggregates ≡ the in-memory reduce, per backend."""
    outcome = _store_run(tmp_path, workers=workers, backend=backend)
    store = CampaignStore(tmp_path)
    _assert_store_equals_reduce(store, outcome.value)


def test_all_backends_store_identical_aggregates(tmp_path):
    """Three stores of the same campaign answer queries identically."""
    answers = []
    for name, kwargs in (
        ("serial", {}),
        ("workers4", {"workers": 4}),
        ("batched", {"backend": "batched"}),
    ):
        root = tmp_path / name
        _store_run(root, replicas=4, **kwargs)
        store = CampaignStore(root)
        answers.append(
            (nff_ratio(store), confusion(store), stage_latency(store))
        )
    assert answers[0] == answers[1] == answers[2]


def test_accuracy_drift_across_stored_campaigns(tmp_path):
    """The cross-campaign question: drift from stored parts only."""
    summaries = {}
    for campaign, seed in GOLDEN_CAMPAIGNS:
        outcome = _store_run(
            tmp_path,
            seed=seed,
            replicas=3,
            campaign=campaign,
            spec=GOLDEN_SPEC,
        )
        summaries[campaign] = outcome.value
    rows = accuracy_drift(CampaignStore(tmp_path))
    assert [row["campaign"] for row in rows] == [c for c, _ in GOLDEN_CAMPAIGNS]
    previous = None
    for row in rows:
        summary = summaries[row["campaign"]]
        assert row["faults_injected"] == summary.faults_injected
        assert row["faults_attributed"] == summary.faults_attributed
        assert row["accuracy"] == summary.attribution_accuracy
        expected_drift = (
            0.0
            if previous is None
            else summary.attribution_accuracy - previous
        )
        assert row["drift"] == expected_drift
        previous = summary.attribution_accuracy


# -- fixed-corpus fuzz ------------------------------------------------------


@settings(max_examples=6, deadline=None, derandomize=True)
@given(
    seed=FUZZ_SEED,
    replicas=st.integers(min_value=1, max_value=4),
    chunk=FUZZ_CHUNK,
    expected_faults=FUZZ_EXPECTED_FAULTS,
    obs=st.booleans(),
)
def test_fuzz_store_equals_reduce(
    tmp_path_factory, seed, replicas, chunk, expected_faults, obs
):
    """Random campaigns: stored aggregates always equal the reduce."""
    spec = fuzz_spec(expected_faults, obs)
    root = tmp_path_factory.mktemp("fuzz-store")
    outcome = _store_run(
        root, seed=seed, replicas=replicas, chunk=chunk, spec=spec
    )
    _assert_store_equals_reduce(CampaignStore(root), outcome.value)


# -- byte-stable golden report ---------------------------------------------


def _populate_golden(root) -> None:
    for campaign, seed in GOLDEN_CAMPAIGNS:
        _store_run(
            root,
            seed=seed,
            replicas=3,
            campaign=campaign,
            spec=GOLDEN_SPEC,
        )


def test_query_report_matches_golden(tmp_path):
    """``repro query report`` output is byte-stable across runs/hosts.

    The report deliberately contains no wall-clock values or paths, so
    the golden pins renderer *and* stored-aggregate semantics at once.
    """
    _populate_golden(tmp_path)
    report = render_query_report(CampaignStore(tmp_path))
    assert report == GOLDEN_PATH.read_text(encoding="utf-8")


def regenerate() -> None:
    """Regenerate the golden after a *deliberate* semantic change::

        PYTHONPATH=src python -c \\
          "from tests.storage.test_store_differential import regenerate; regenerate()"
    """
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        _populate_golden(Path(tmp))
        report = render_query_report(CampaignStore(tmp))
    GOLDEN_PATH.write_text(report, encoding="utf-8")
    print(f"regenerated {GOLDEN_PATH}: {len(report.splitlines())} lines")
