"""Schema round-trip property tests for the columnar campaign store.

Arbitrary replica-result corpora — including NaN/±inf alpha finals and
interleaved :class:`ReplicaFailure` rows — are written with
:func:`repro.storage.writer.write_run` and read back through
:class:`repro.storage.store.CampaignStore`; every stored field must come
back *bit-equal* (floats compared by their IEEE-754 bit pattern, so a
NaN final survives the trip too).

The same corpus drives the batched backend's CSR state columns:
``CampaignOutcomePack.from_results`` -> ``unpack`` must reproduce
``alpha_state``/``trust_state`` exactly, including replicas whose banks
never saw a FRU (empty state) next to replicas with populated state.
"""

from __future__ import annotations

import struct
import tempfile
from dataclasses import replace
from pathlib import Path
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults.campaign import CampaignReplicaOutcome
from repro.runtime.batch import CampaignOutcomePack
from repro.runtime.runner import ReplicaFailure, ReplicaResult, RunOutcome
from repro.runtime.seeds import stream_fingerprint
from repro.storage import CampaignStore, parquet_available, write_run

ROOT_SEED = 7
SPEC_DIGEST = "ab" * 32


def _bits(x: float) -> int:
    """IEEE-754 bit pattern — NaN-safe float identity."""
    return struct.unpack("<q", struct.pack("<d", float(x)))[0]


def _canon(outcome: CampaignReplicaOutcome) -> CampaignReplicaOutcome:
    """Outcome with float state mapped to bit patterns (NaN-comparable)."""
    return replace(
        outcome,
        alpha_state=tuple((f, _bits(v)) for f, v in outcome.alpha_state),
        trust_state=tuple((f, _bits(v)) for f, v in outcome.trust_state),
    )


# -- strategies ------------------------------------------------------------

_MECHANISMS = ("seu", "emi-burst", "connector", "permanent", "sensor")
_TARGETS = ("comp1", "comp2", "comp3", "channel:0")
_FRUS = ("comp1", "comp2", "comp3", "channel:0", "sensor.C1")

_plan_event = st.tuples(
    st.sampled_from(_MECHANISMS),
    st.sampled_from(_TARGETS),
    st.integers(min_value=0, max_value=10**9),
)

# JSON collapses every NaN payload to the canonical quiet NaN, so the
# corpus uses the canonical one explicitly (plus ±inf, ±0.0 and finite
# doubles, all of which round-trip bit-exactly through shortest-repr).
_state_value = st.one_of(
    st.floats(allow_nan=False, allow_infinity=True, width=64),
    st.just(float("nan")),
)

_state = st.lists(
    st.tuples(st.sampled_from(_FRUS), _state_value),
    max_size=4,
    unique_by=lambda kv: kv[0],
).map(lambda kvs: tuple(sorted(kvs, key=lambda kv: kv[0])))


@st.composite
def _outcomes(draw, index: int) -> CampaignReplicaOutcome:
    plan = tuple(draw(st.lists(_plan_event, max_size=6)))
    correct = tuple(draw(st.booleans()) for _ in plan)
    injected: dict[str, int] = {}
    attributed: dict[str, int] = {}
    hits = 0
    for (mechanism, _t, _a), ok in zip(plan, correct):
        injected[mechanism] = injected.get(mechanism, 0) + 1
        if ok:
            attributed[mechanism] = attributed.get(mechanism, 0) + 1
            hits += 1
    return CampaignReplicaOutcome(
        index=index,
        plan_events=plan,
        injected_by_mechanism=tuple(sorted(injected.items())),
        attributed_by_mechanism=tuple(sorted(attributed.items())),
        faults_injected=len(plan),
        faults_attributed=hits,
        verdicts_emitted=draw(st.integers(min_value=0, max_value=20)),
        events_simulated=draw(st.integers(min_value=0, max_value=10**6)),
        alpha_state=draw(_state),
        trust_state=draw(_state),
    )


@st.composite
def _result_batches(draw) -> list[ReplicaResult | ReplicaFailure]:
    n = draw(st.integers(min_value=1, max_value=6))
    fail_at = draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), max_size=2)
    )
    results: list[ReplicaResult | ReplicaFailure] = []
    for i in range(n):
        if i in fail_at:
            results.append(
                ReplicaFailure(
                    index=i,
                    error_type="ValueError",
                    message=f"boom {i}",
                    traceback="tb",
                    attempts=1,
                    worker="serial",
                )
            )
            continue
        outcome = draw(_outcomes(i))
        results.append(
            ReplicaResult(
                index=i,
                value=outcome,
                events=outcome.events_simulated,
                elapsed_s=draw(
                    st.floats(
                        min_value=0.0,
                        max_value=10.0,
                        allow_nan=False,
                        allow_infinity=False,
                    )
                ),
                worker=draw(st.sampled_from(("serial", "pid-100", "pid-200"))),
            )
        )
    return results


def _outcome_of(results) -> RunOutcome:
    """A duck-typed RunOutcome over an interleaved result/failure list."""
    oks = tuple(r for r in results if isinstance(r, ReplicaResult))
    fails = tuple(r for r in results if isinstance(r, ReplicaFailure))
    value = SimpleNamespace(plan_digest="d" * 64, obs_counters=None)
    return RunOutcome(value=value, results=oks, metrics=None, failures=fails)


def _write_and_read(results, fmt: str, root: Path):
    outcome = _outcome_of(results)
    write_run(
        root,
        outcome,
        root_seed=ROOT_SEED,
        spec_digest=SPEC_DIGEST,
        meta={"campaign_id": "rt", "format": fmt},
    )
    parts = CampaignStore(root).parts()
    assert len(parts) == 1
    return outcome, parts[0]


def _assert_part_matches(outcome: RunOutcome, part) -> None:
    replicas = part.table("replicas")
    assert replicas["replica"] == [r.index for r in outcome.results]
    for i, r in enumerate(outcome.results):
        v = r.value
        assert replicas["seed_fingerprint"][i] == stream_fingerprint(
            ROOT_SEED, r.index
        )
        assert replicas["faults_injected"][i] == v.faults_injected
        assert replicas["faults_attributed"][i] == v.faults_attributed
        assert replicas["verdicts_emitted"][i] == v.verdicts_emitted
        assert replicas["events_simulated"][i] == v.events_simulated

    # A batch with no successful replicas stores as a generic part that
    # carries no campaign tables.
    assert part.kind == ("campaign" if outcome.results else "generic")
    if part.kind == "generic":
        _assert_failures_match(outcome, part)
        return

    plan = part.table("plan_events")
    flat = [
        (r.index, ordinal, *event)
        for r in outcome.results
        for ordinal, event in enumerate(r.value.plan_events)
    ]
    assert (
        list(
            zip(
                plan["replica"],
                plan["ordinal"],
                plan["mechanism"],
                plan["target"],
                plan["at_us"],
            )
        )
        == flat
    )

    mech = part.table("mechanisms")
    rows = list(
        zip(
            mech["replica"],
            mech["mechanism"],
            mech["injected"],
            mech["attributed"],
        )
    )
    expected_mech = [
        (r.index, m, inj, dict(r.value.attributed_by_mechanism).get(m, 0))
        for r in outcome.results
        for m, inj in r.value.injected_by_mechanism
    ]
    assert rows == expected_mech

    for name, attr in (("alpha_state", "alpha_state"), ("trust_state", "trust_state")):
        table = part.table(name)
        stored = [
            (rep, fru, _bits(value))
            for rep, fru, value in zip(
                table["replica"], table["fru"], table["value"]
            )
        ]
        expected = [
            (r.index, fru, _bits(value))
            for r in outcome.results
            for fru, value in getattr(r.value, attr)
        ]
        assert stored == expected, name

    _assert_failures_match(outcome, part)


def _assert_failures_match(outcome: RunOutcome, part) -> None:
    failures = part.table("failures")
    assert list(
        zip(
            failures["replica"],
            failures["error_type"],
            failures["message"],
            failures["traceback"],
            failures["attempts"],
            failures["worker"],
        )
    ) == [
        (f.index, f.error_type, f.message, f.traceback, f.attempts, f.worker)
        for f in outcome.failures
    ]
    assert part.manifest["replicas"] == len(outcome.results)
    assert part.manifest["failed"] == len(outcome.failures)
    assert part.manifest["complete"] == (not outcome.failures)


# -- store round-trip (property) -------------------------------------------


@settings(max_examples=40, deadline=None)
@given(_result_batches())
def test_store_roundtrip_bit_equal(results):
    """write -> read reproduces every stored field bit for bit."""
    with tempfile.TemporaryDirectory() as tmp:
        outcome, part = _write_and_read(results, "json", Path(tmp))
        _assert_part_matches(outcome, part)


def test_store_roundtrip_nonfinite_state():
    """NaN, ±inf, -0.0 and denormal finals all survive the JSON trip."""
    nasty = (
        ("comp1", float("nan")),
        ("comp2", float("inf")),
        ("comp3", float("-inf")),
        ("channel:0", -0.0),
        ("sensor.C1", 5e-324),
    )
    outcome = CampaignReplicaOutcome(
        index=0,
        plan_events=(("seu", "comp1", 100),),
        injected_by_mechanism=(("seu", 1),),
        attributed_by_mechanism=(),
        faults_injected=1,
        faults_attributed=0,
        verdicts_emitted=2,
        events_simulated=10,
        alpha_state=nasty,
        trust_state=nasty,
    )
    results = [
        ReplicaResult(index=0, value=outcome, events=10, elapsed_s=0.1, worker="serial")
    ]
    with tempfile.TemporaryDirectory() as tmp:
        run, part = _write_and_read(results, "json", Path(tmp))
        _assert_part_matches(run, part)
        stored = part.table("alpha_state")["value"]
        assert [_bits(v) for v in stored] == [_bits(v) for _f, v in nasty]


def test_store_roundtrip_counters_and_histograms():
    """Merged counter/histogram snapshots round-trip canonically."""
    snapshot = {
        "schema": 1,
        "counters": {"detector.symptoms{cls=a}": 3.0, "verdicts": 7.0},
        "histograms": {
            "provenance.stage_latency_us{cls=a,stage=x->y}": {
                "count": 2,
                "sum": 7.0,
                "min": 1.0,
                "max": 6.0,
                "buckets": {"1": 1, "8": 1},
            },
            "empty": {
                "count": 0,
                "sum": 0.0,
                "min": None,
                "max": None,
                "buckets": {},
            },
        },
    }
    outcome = CampaignReplicaOutcome(
        index=0,
        plan_events=(),
        injected_by_mechanism=(),
        attributed_by_mechanism=(),
        faults_injected=0,
        faults_attributed=0,
        verdicts_emitted=0,
        events_simulated=1,
    )
    results = (
        ReplicaResult(index=0, value=outcome, events=1, elapsed_s=0.1, worker="serial"),
    )
    run = RunOutcome(
        value=SimpleNamespace(plan_digest="d" * 64, obs_counters=snapshot),
        results=results,
        metrics=None,
        failures=(),
    )
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        write_run(
            root,
            run,
            root_seed=ROOT_SEED,
            spec_digest=SPEC_DIGEST,
            meta={"campaign_id": "rt", "format": "json"},
        )
        part = CampaignStore(root).parts()[0]
        counters = part.table("counters")
        assert dict(zip(counters["key"], counters["value"])) == snapshot["counters"]
        hists = part.table("histograms")
        assert sorted(hists["key"]) == sorted(snapshot["histograms"])
        i = hists["key"].index("provenance.stage_latency_us{cls=a,stage=x->y}")
        assert hists["count"][i] == 2
        assert hists["sum"][i] == 7.0
        assert hists["buckets"][i] == '{"1":1,"8":1}'
        j = hists["key"].index("empty")
        assert hists["min"][j] is None and hists["max"][j] is None
        assert hists["buckets"][j] == "{}"


@pytest.mark.skipif(not parquet_available(), reason="pyarrow not installed")
@settings(max_examples=15, deadline=None)
@given(_result_batches())
def test_store_roundtrip_parquet(results):
    """The pyarrow backend round-trips the identical logical content."""
    with tempfile.TemporaryDirectory() as tmp:
        outcome, part = _write_and_read(results, "parquet", Path(tmp))
        assert part.manifest["format"] == "parquet"
        _assert_part_matches(outcome, part)


@pytest.mark.skipif(parquet_available(), reason="pyarrow is installed")
def test_parquet_without_pyarrow_is_a_config_error():
    with tempfile.TemporaryDirectory() as tmp:
        with pytest.raises(ConfigurationError, match="pyarrow"):
            _write_and_read(
                [
                    ReplicaFailure(
                        index=0,
                        error_type="ValueError",
                        message="x",
                        traceback="tb",
                        attempts=1,
                        worker="serial",
                    )
                ],
                "parquet",
                Path(tmp),
            )


def test_invalid_campaign_id_rejected():
    results = [
        ReplicaFailure(
            index=0,
            error_type="ValueError",
            message="x",
            traceback="tb",
            attempts=1,
            worker="serial",
        )
    ]
    with tempfile.TemporaryDirectory() as tmp:
        for bad in (".hidden", "a/b", "a b", "..", "c\x00d"):
            with pytest.raises(ConfigurationError, match="campaign id"):
                write_run(
                    Path(tmp),
                    _outcome_of(results),
                    root_seed=ROOT_SEED,
                    spec_digest=SPEC_DIGEST,
                    meta={"campaign_id": bad, "format": "json"},
                )


# -- batched-backend CSR state columns (property) --------------------------


@settings(max_examples=60, deadline=None)
@given(_result_batches())
def test_pack_roundtrip_preserves_state_bits(results):
    """from_results -> unpack keeps alpha/trust state NaN-exactly."""
    pack = CampaignOutcomePack.from_results(results)
    unpacked = pack.unpack()
    expected = sorted(results, key=lambda r: r.index)
    assert len(unpacked) == len(expected)
    for got, want in zip(unpacked, expected):
        if isinstance(want, ReplicaFailure):
            assert got == want
            continue
        assert _canon(got.value) == _canon(want.value)
        assert got.index == want.index
        assert got.events == want.events
