"""Corruption, version-skew and resume-equivalence tests for the store.

A damaged store must fail *diagnosably*: truncated or bit-flipped table
files and version-skewed manifests all surface as
:class:`~repro.errors.ConfigurationError` naming the offending file —
never a backend stack trace — and the tolerant scan mode reports how
many parts were dropped.  Storing a resumed run must produce the same
part an uninterrupted run writes, modulo the declared volatile columns
(wall-clock and worker labels).
"""

from __future__ import annotations

import json
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.faults.campaign import CampaignReplicaOutcome, CampaignReplicaSpec
from repro.runtime.runner import ReplicaResult, RunOutcome
from repro.runtime.workloads import run_random_campaigns
from repro.storage import CampaignStore, write_run
from repro.storage.schema import TABLES, VOLATILE_COLUMNS, tables_for_kind
from repro.units import ms

SPEC_DIGEST = "cd" * 32


def _synthetic_part(root: Path, *, campaign="c1", seed=7) -> Path:
    """One small campaign part written without touching the simulator."""
    outcome = CampaignReplicaOutcome(
        index=0,
        plan_events=(("seu", "comp1", 100), ("connector", "comp2", 900)),
        injected_by_mechanism=(("connector", 1), ("seu", 1)),
        attributed_by_mechanism=(("seu", 1),),
        faults_injected=2,
        faults_attributed=1,
        verdicts_emitted=3,
        events_simulated=50,
        alpha_state=(("comp1", 2.0),),
        trust_state=(("comp1", 0.5),),
    )
    run = RunOutcome(
        value=SimpleNamespace(plan_digest="e" * 64, obs_counters=None),
        results=(
            ReplicaResult(
                index=0, value=outcome, events=50, elapsed_s=0.1, worker="serial"
            ),
        ),
        metrics=None,
        failures=(),
    )
    return write_run(
        root,
        run,
        root_seed=seed,
        spec_digest=SPEC_DIGEST,
        meta={"campaign_id": campaign, "format": "json"},
    )


# -- table-file corruption --------------------------------------------------


def test_truncated_table_is_a_config_error(tmp_path):
    part_dir = _synthetic_part(tmp_path)
    table_path = part_dir / "replicas.json"
    table_path.write_bytes(table_path.read_bytes()[: 10])
    part = CampaignStore(tmp_path).parts()[0]
    with pytest.raises(ConfigurationError, match="checksum mismatch"):
        part.table("replicas")


def test_bit_flip_is_a_config_error(tmp_path):
    part_dir = _synthetic_part(tmp_path)
    table_path = part_dir / "mechanisms.json"
    blob = bytearray(table_path.read_bytes())
    blob[len(blob) // 2] ^= 0x40
    table_path.write_bytes(bytes(blob))
    part = CampaignStore(tmp_path).parts()[0]
    with pytest.raises(ConfigurationError, match=r"checksum mismatch"):
        part.table("mechanisms")


def test_missing_table_file_is_a_config_error(tmp_path):
    part_dir = _synthetic_part(tmp_path)
    (part_dir / "alpha_state.json").unlink()
    part = CampaignStore(tmp_path).parts()[0]
    with pytest.raises(ConfigurationError, match="missing"):
        part.table("alpha_state")


def test_unparseable_table_with_matching_checksum(tmp_path):
    """Even a checksum-valid file must fail cleanly if it won't parse."""
    from repro.storage.backend import file_sha256

    part_dir = _synthetic_part(tmp_path)
    table_path = part_dir / "counters.json"
    table_path.write_text("this is not json{", encoding="utf-8")
    manifest_path = part_dir / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    manifest["files"]["counters"]["sha256"] = file_sha256(table_path)
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
    part = CampaignStore(tmp_path).parts()[0]
    with pytest.raises(ConfigurationError):
        part.table("counters")


# -- manifest corruption and version skew ----------------------------------


def _edit_manifest(part_dir: Path, **changes) -> None:
    manifest_path = part_dir / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    manifest.update(changes)
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")


def test_bumped_schema_version_is_a_config_error(tmp_path):
    part_dir = _synthetic_part(tmp_path)
    _edit_manifest(part_dir, schema_version=99)
    with pytest.raises(ConfigurationError, match="schema version 99"):
        CampaignStore(tmp_path).parts()


def test_unknown_kind_is_a_config_error(tmp_path):
    part_dir = _synthetic_part(tmp_path)
    _edit_manifest(part_dir, kind="exotic")
    with pytest.raises(ConfigurationError, match="unknown kind"):
        CampaignStore(tmp_path).parts()


def test_unreadable_manifest_is_a_config_error(tmp_path):
    part_dir = _synthetic_part(tmp_path)
    (part_dir / "manifest.json").write_text("{{{", encoding="utf-8")
    with pytest.raises(ConfigurationError, match="unreadable manifest"):
        CampaignStore(tmp_path).parts()


def test_manifest_missing_table_entry_is_a_config_error(tmp_path):
    part_dir = _synthetic_part(tmp_path)
    manifest_path = part_dir / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    del manifest["files"]["plan_events"]
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(ConfigurationError, match="plan_events"):
        CampaignStore(tmp_path).parts()


def test_missing_store_root_is_a_config_error(tmp_path):
    with pytest.raises(ConfigurationError, match="does not exist"):
        CampaignStore(tmp_path / "nope")


def test_tolerant_scan_skips_and_reports(tmp_path):
    """One healthy part + one version-skewed part: scan drops one."""
    _synthetic_part(tmp_path, campaign="ok")
    bad_dir = _synthetic_part(tmp_path, campaign="bad", seed=8)
    _edit_manifest(bad_dir, schema_version=99)
    store = CampaignStore(tmp_path)
    with pytest.raises(ConfigurationError):
        store.parts()
    parts = store.parts(tolerant=True)
    assert [p.campaign_id for p in parts] == ["ok"]
    report = store.scan_report()
    assert report["parts"] == 1
    assert report["skipped"] == 1
    assert "schema version" in report["skipped_parts"][0]["error"]


# -- resume-then-store ≡ uninterrupted-store -------------------------------


def _comparable_tables(part) -> dict:
    """All stored columns minus the declared volatile ones."""
    out = {}
    for name in tables_for_kind(part.kind):
        columns = dict(part.table(name))
        for volatile in VOLATILE_COLUMNS.get(name, ()):
            columns.pop(volatile, None)
        out[name] = columns
    return out


def test_resume_then_store_equals_uninterrupted_store(tmp_path):
    """A resumed run stores the identical part (modulo wall/worker)."""
    spec = CampaignReplicaSpec(expected_faults=3.0, horizon_us=ms(250))
    kwargs = dict(root_seed=21, spec=spec, workers=1, chunk_size=2)
    plain_root = tmp_path / "plain"
    resumed_root = tmp_path / "resumed"
    ledger = str(tmp_path / "ledger.jsonl")

    plain = run_random_campaigns(
        4,
        store=str(plain_root),
        store_meta={"campaign_id": "c1", "format": "json"},
        **kwargs,
    )
    run_random_campaigns(4, checkpoint=ledger, **kwargs)
    resumed = run_random_campaigns(
        4,
        checkpoint=ledger,
        resume=True,
        store=str(resumed_root),
        store_meta={"campaign_id": "c1", "format": "json"},
        **kwargs,
    )
    assert resumed.value == plain.value
    assert resumed.metrics.replicas_resumed == 4

    plain_part = CampaignStore(plain_root).parts()[0]
    resumed_part = CampaignStore(resumed_root).parts()[0]
    # Same run identity -> same partition and part directory names.
    assert plain_part.path.relative_to(plain_root) == resumed_part.path.relative_to(
        resumed_root
    )
    assert _comparable_tables(resumed_part) == _comparable_tables(plain_part)


def test_rewriting_a_part_is_idempotent(tmp_path):
    """Storing the same run twice leaves exactly one identical part."""
    first = _synthetic_part(tmp_path)
    second = _synthetic_part(tmp_path)
    assert first == second
    store = CampaignStore(tmp_path)
    assert len(store.part_dirs()) == 1
    part = store.parts()[0]
    for name in tables_for_kind(part.kind):
        assert sorted(part.table(name)) == sorted(TABLES[name])
