"""Tests for the reference cluster presets."""

from __future__ import annotations

import pytest

from repro.components.das import Criticality
from repro.presets import figure10_cluster, small_cluster
from repro.units import ms


def test_small_cluster_structure():
    cluster = small_cluster(n_components=5, seed=1)
    assert len(cluster.components) == 5
    assert cluster.job_location["p0"] == "c0"
    assert set(cluster.vns) == {"vn-main"}
    with pytest.raises(ValueError):
        small_cluster(n_components=1)


def test_figure10_placement_matches_paper():
    parts = figure10_cluster(seed=1)
    cluster = parts.cluster
    loc = cluster.job_location
    assert loc["A1"] == "comp1" and loc["B1"] == "comp1" and loc["S1"] == "comp1"
    assert loc["A3"] == "comp2" and loc["C1"] == "comp2"
    assert loc["C2"] == "comp2" and loc["S2"] == "comp2"
    assert loc["A2"] == "comp3" and loc["B2"] == "comp3" and loc["S3"] == "comp3"
    assert loc["s-voter"] == "comp4"
    assert loc["diag"] == "comp5"


def test_figure10_component2_shares_four_dases():
    parts = figure10_cluster(seed=1)
    comp2 = parts.cluster.components["comp2"]
    assert comp2.das_names() == frozenset({"A", "C", "S"})
    assert len(comp2.partitions) == 4


def test_figure10_criticalities():
    parts = figure10_cluster(seed=1)
    dases = parts.cluster.dases
    assert dases["S"].criticality is Criticality.SAFETY_CRITICAL
    assert dases["A"].criticality is Criticality.NON_SAFETY_CRITICAL
    sc = parts.cluster.components["comp2"].safety_critical_partitions()
    assert [p.job.name for p in sc] == ["S2"]


def test_figure10_healthy_run_is_clean():
    parts = figure10_cluster(seed=1)
    parts.cluster.run(ms(500))
    anomalies = {
        k: v
        for k, v in parts.cluster.trace.kinds().items()
        if k != "fault.injected"
    }
    assert anomalies == {}


def test_figure10_sensor_stimulus_active():
    parts = figure10_cluster(seed=1)
    cluster = parts.cluster
    v0 = cluster.job("C1").sensors["wheel_speed"]
    cluster.run(ms(600))
    v1 = cluster.job("C1").sensors["wheel_speed"]
    assert v0 != v1


def test_figure10_replicas_agree():
    parts = figure10_cluster(seed=1)
    cluster = parts.cluster
    # Stop after comp3's slot within a round, so all three replicas have
    # dispatched on the same time quantum (replica determinism holds per
    # round, not across a round boundary snapshot).
    cluster.run(ms(198))
    voter = cluster.job("s-voter")
    values = {
        name: voter.port(port).read_state().value
        for name, port in (("S1", "in_s1"), ("S2", "in_s2"), ("S3", "in_s3"))
    }
    assert len({round(v, 9) for v in values.values()}) == 1


def test_gateway_cluster_structure():
    from repro.presets import gateway_cluster

    cluster = gateway_cluster(seed=2)
    assert set(cluster.components) == {
        "ecu-chassis",
        "ecu-gateway",
        "ecu-dashboard",
    }
    gw = cluster.job("gw-chassis-telematics")
    assert gw.das == "telematics"


def test_avionics_cluster_structure():
    from repro.presets import avionics_cluster

    parts = avionics_cluster(seed=2)
    cluster = parts.cluster
    assert len(cluster.components) == 8
    # lrm2 hosts one replica of each TMR triple
    assert cluster.components["lrm2"].das_names() == frozenset(
        {"elevator", "rudder"}
    )
    sc = [
        d.name
        for d in cluster.dases.values()
        if d.is_safety_critical
    ]
    assert sorted(sc) == ["elevator", "rudder"]
