"""Unit + property tests for the TDMA schedule."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.tta.tdma import TdmaSchedule


@pytest.fixture
def sched():
    return TdmaSchedule(("n0", "n1", "n2"), slot_length_us=1000)


def test_round_structure(sched):
    assert sched.slots_per_round == 3
    assert sched.round_length_us == 3000
    assert sched.participants() == ("n0", "n1", "n2")


def test_slot_at(sched):
    slot = sched.slot_at(4500)
    assert slot.round_index == 1
    assert slot.slot_index == 1
    assert slot.sender == "n1"
    assert slot.start_us == 4000
    assert slot.end_us == 5000


def test_slot_start_and_round(sched):
    assert sched.slot_start(2, 1) == 7000
    assert sched.round_start(2) == 6000
    assert sched.round_of(6999) == 2
    with pytest.raises(ConfigurationError):
        sched.slot_start(0, 3)


def test_multi_slot_sender():
    sched = TdmaSchedule(("a", "b", "a"), 500)
    assert sched.slots_of("a") == (0, 2)
    assert sched.participants() == ("a", "b")


def test_occurrences(sched):
    occ = sched.occurrences("n1", 0, 9000)
    assert [o.start_us for o in occ] == [1000, 4000, 7000]
    # half-open interval
    occ = sched.occurrences("n0", 3000, 6001)
    assert [o.start_us for o in occ] == [3000, 6000]


def test_unknown_sender(sched):
    with pytest.raises(ConfigurationError):
        sched.slots_of("ghost")


def test_negative_time_rejected(sched):
    with pytest.raises(ConfigurationError):
        sched.slot_at(-1)


def test_empty_schedule_rejected():
    with pytest.raises(ConfigurationError):
        TdmaSchedule((), 100)
    with pytest.raises(ConfigurationError):
        TdmaSchedule(("a",), 0)


@given(
    st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=8),
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=0, max_value=10**8),
)
def test_property_slot_at_consistency(senders, slot_len, t):
    sched = TdmaSchedule(tuple(senders), slot_len)
    slot = sched.slot_at(t)
    assert slot.start_us <= t < slot.end_us
    assert slot.end_us - slot.start_us == slot_len
    assert sched.senders[slot.slot_index] == slot.sender
    # start of the slot maps back to the same slot
    again = sched.slot_at(slot.start_us)
    assert (again.round_index, again.slot_index) == (
        slot.round_index,
        slot.slot_index,
    )
