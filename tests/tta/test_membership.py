"""Unit tests for the consistent membership service."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.tta.membership import MembershipService, views_consistent

SENDERS = ("a", "b", "c")


def test_initial_view_includes_everyone():
    svc = MembershipService("a", SENDERS)
    assert svc.view() == frozenset(SENDERS)


def test_failure_removes_after_fail_limit():
    svc = MembershipService("a", SENDERS, fail_limit=2)
    svc.observe("b", False, 100)
    assert svc.is_member("b")  # one failure not yet enough
    svc.observe("b", False, 200)
    assert not svc.is_member("b")
    assert svc.removal_count("b") == 1
    assert svc.transitions == [(200, "b", False)]


def test_rejoin_after_consecutive_successes():
    svc = MembershipService("a", SENDERS, fail_limit=1, rejoin_limit=2)
    svc.observe("b", False, 100)
    assert not svc.is_member("b")
    svc.observe("b", True, 200)
    assert not svc.is_member("b")
    svc.observe("b", True, 300)
    assert svc.is_member("b")
    assert svc.transitions[-1] == (300, "b", True)


def test_interleaved_failures_reset_success_streak():
    svc = MembershipService("a", SENDERS, fail_limit=1, rejoin_limit=2)
    svc.observe("b", False, 1)
    svc.observe("b", True, 2)
    svc.observe("b", False, 3)
    svc.observe("b", True, 4)
    assert not svc.is_member("b")


def test_observer_always_member_of_own_view():
    svc = MembershipService("a", SENDERS)
    assert svc.is_member("a")
    assert "a" in svc.view()


def test_unknown_sender_ignored():
    svc = MembershipService("a", SENDERS)
    svc.observe("ghost", False, 1)
    assert not svc.is_member("ghost")
    assert svc.removal_count("ghost") == 0


def test_invalid_limits():
    with pytest.raises(ConfigurationError):
        MembershipService("a", SENDERS, fail_limit=0)
    with pytest.raises(ConfigurationError):
        MembershipService("a", SENDERS, rejoin_limit=0)


def test_views_consistent_on_agreement():
    services = [MembershipService(n, SENDERS) for n in SENDERS]
    for svc in services:
        svc.observe("b", False, 10)
    assert views_consistent(services)


def test_views_inconsistent_on_disagreement():
    a = MembershipService("a", SENDERS)
    c = MembershipService("c", SENDERS)
    a.observe("b", False, 10)  # only a saw the failure
    assert not views_consistent([a, c])


def test_views_consistent_trivial_cases():
    assert views_consistent([])
    assert views_consistent([MembershipService("a", SENDERS)])
