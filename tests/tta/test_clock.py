"""Unit tests for drifting local clocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tta.clock import LocalClock


def test_zero_drift_tracks_reference():
    clock = LocalClock()
    assert clock.read(1_000_000) == pytest.approx(1_000_000)
    assert clock.error(1_000_000) == 0.0


def test_drift_accumulates_linearly():
    clock = LocalClock(drift_ppm=100.0)
    # 100 ppm over one second = 100 us.
    assert clock.error(1_000_000) == pytest.approx(100.0)
    assert clock.read(1_000_000) == pytest.approx(1_000_100.0)


def test_correction_rebases_drift():
    clock = LocalClock(drift_ppm=100.0)
    clock.apply_correction(-clock.error(1_000_000), 1_000_000)
    assert clock.error(1_000_000) == pytest.approx(0.0)
    # Drift resumes from the correction instant.
    assert clock.error(2_000_000) == pytest.approx(100.0)


def test_resynchronise_clears_error():
    clock = LocalClock(drift_ppm=50.0)
    assert clock.error(10_000_000) != 0.0
    clock.resynchronise(10_000_000)
    assert clock.error(10_000_000) == 0.0


def test_degrade_adds_drift():
    clock = LocalClock(drift_ppm=10.0)
    clock.degrade(90.0)
    assert clock.drift_ppm == pytest.approx(100.0)


def test_jitter_requires_rng():
    with pytest.raises(ConfigurationError):
        LocalClock(jitter_us=1.0)


def test_jitter_perturbs_reads():
    rng = np.random.default_rng(0)
    clock = LocalClock(jitter_us=5.0, rng=rng)
    reads = {clock.read(1000) for _ in range(10)}
    assert len(reads) > 1
    # error() stays jitter-free
    assert clock.error(1000) == 0.0


def test_negative_jitter_rejected():
    with pytest.raises(ConfigurationError):
        LocalClock(jitter_us=-1.0)
