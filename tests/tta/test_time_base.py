"""Unit + property tests for the sparse time base."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.tta.time_base import SparseTimeBase


def test_lattice_point_indexing():
    tb = SparseTimeBase(granularity_us=100, precision_us=10)
    assert tb.lattice_point(0) == 0
    assert tb.lattice_point(99) == 0
    assert tb.lattice_point(100) == 1
    assert tb.lattice_start(3) == 300


def test_simultaneity():
    tb = SparseTimeBase(100, 10)
    assert tb.simultaneous(10, 90)
    assert not tb.simultaneous(90, 110)


def test_within_delta():
    tb = SparseTimeBase(100, 10)
    assert tb.within_delta(50, 250, 2)
    assert not tb.within_delta(50, 350, 2)
    with pytest.raises(ValueError):
        tb.within_delta(0, 0, -1)


def test_points_in_interval():
    tb = SparseTimeBase(100, 10)
    assert list(tb.points_in(150, 410)) == [1, 2, 3, 4]
    assert list(tb.points_in(100, 100)) == []
    assert list(tb.points_in(100, 101)) == [1]


def test_reasonableness_condition_enforced():
    with pytest.raises(ConfigurationError):
        SparseTimeBase(granularity_us=20, precision_us=10)
    SparseTimeBase(granularity_us=21, precision_us=10)  # ok


def test_invalid_parameters():
    with pytest.raises(ConfigurationError):
        SparseTimeBase(0, 0)
    with pytest.raises(ConfigurationError):
        SparseTimeBase(10, -1)


@given(
    st.integers(min_value=1, max_value=10_000),
    st.integers(min_value=0, max_value=10**9),
)
def test_property_point_start_consistency(granularity, t):
    tb = SparseTimeBase(granularity, 0)
    p = tb.lattice_point(t)
    assert tb.lattice_start(p) <= t < tb.lattice_start(p + 1)


@given(
    st.integers(min_value=3, max_value=1000),
    st.integers(min_value=0, max_value=10**7),
    st.integers(min_value=0, max_value=10**7),
)
def test_property_simultaneity_symmetric(granularity, t1, t2):
    tb = SparseTimeBase(granularity, (granularity - 1) // 2)
    assert tb.simultaneous(t1, t2) == tb.simultaneous(t2, t1)
    assert tb.within_delta(t1, t2, 0) == tb.simultaneous(t1, t2)
