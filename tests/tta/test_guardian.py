"""Unit tests for bus guardians."""

from __future__ import annotations

from repro.tta.guardian import BusGuardian
from repro.tta.tdma import TdmaSchedule


def make_guardian(tolerance=0):
    sched = TdmaSchedule(("a", "b", "c"), 1000)
    return BusGuardian("b", sched, window_tolerance_us=tolerance)


def test_in_slot_send_passes():
    g = make_guardian()
    assert g.check(1500.0).allowed
    assert g.passed_count == 1


def test_foreign_slot_send_blocked():
    g = make_guardian()
    decision = g.check(250.0)  # slot of "a"
    assert not decision.allowed
    assert decision.reason == "foreign-slot"
    assert g.blocked_count == 1
    assert g.blocked_events() == [(250, "foreign-slot")]


def test_tolerance_band_after_slot():
    g = make_guardian(tolerance=50)
    assert g.check(2049.0).allowed  # 49us past own slot end
    assert not g.check(2200.0).allowed


def test_early_send_within_tolerance():
    g = make_guardian(tolerance=50)
    # 30us before own slot start (still in a's slot)
    decision = g.check(970.0)
    assert decision.allowed
    assert decision.reason == "early-within-tolerance"


def test_next_round_slot_also_passes():
    g = make_guardian()
    assert g.check(4500.0).allowed  # b's slot in round 1
