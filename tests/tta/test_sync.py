"""Unit + property tests for fault-tolerant clock synchronisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.tta.sync import (
    SyncService,
    achieved_precision_us,
    fault_tolerant_average,
)


def test_fta_plain_mean_with_k0():
    assert fault_tolerant_average([1.0, 2.0, 3.0], k=0) == pytest.approx(2.0)


def test_fta_discards_extremes():
    # One byzantine measurement far off must not shift the result.
    assert fault_tolerant_average([1.0, 2.0, 3.0, 1e9], k=1) == pytest.approx(2.5)
    assert fault_tolerant_average([-1e9, 1.0, 2.0, 3.0], k=1) == pytest.approx(1.5)


def test_fta_needs_enough_measurements():
    with pytest.raises(ConfigurationError):
        fault_tolerant_average([1.0, 2.0], k=1)
    with pytest.raises(ConfigurationError):
        fault_tolerant_average([1.0], k=-1)


@given(
    st.lists(
        st.floats(min_value=-100, max_value=100),
        min_size=3,
        max_size=20,
    ),
    st.floats(min_value=1e6, max_value=1e9),
)
def test_property_fta_bounded_by_good_values_despite_outlier(good, outlier):
    """With k=1, a single arbitrary outlier cannot drag the FTA outside the
    range of the good measurements."""
    result = fault_tolerant_average(good + [outlier], k=1)
    assert min(good) <= result <= max(good) + 1e-9


def test_sync_service_round_correction():
    svc = SyncService(k=1)
    for dev in (5.0, 6.0, 7.0, 1e6):
        svc.observe(dev)
    correction = svc.round_correction()
    # deviation = err_sender - err_receiver; correction moves the receiver
    # towards the ensemble: positive mean deviation -> positive correction.
    assert correction == pytest.approx(6.5)
    assert svc.corrections_applied == 1
    # measurements consumed
    assert svc.round_correction() is None


def test_sync_service_too_few_measurements_free_runs():
    svc = SyncService(k=1)
    svc.observe(1.0)
    assert svc.round_correction() is None


def test_achieved_precision_scales_with_drift_and_round():
    p_small = achieved_precision_us([10.0], 1_000)
    p_big = achieved_precision_us([10.0], 100_000)
    assert p_big > p_small
    with pytest.raises(ConfigurationError):
        achieved_precision_us([], 1000)
