"""Unit tests for frames and their corruption model."""

from __future__ import annotations

import pytest

from repro.tta.frames import Frame
from repro.tta.tdma import TdmaSchedule


@pytest.fixture
def frame():
    slot = TdmaSchedule(("a", "b"), 1000).slot_at(2000)
    return Frame(sender="a", slot=slot, send_time_us=2003.5)


def test_timing_error(frame):
    assert frame.timing_error_us == pytest.approx(3.5)


def test_corruption_invalidates_crc(frame):
    bad = frame.corrupted(3)
    assert not bad.crc_valid
    assert bad.bit_flips == 3
    # original untouched (frozen dataclass semantics)
    assert frame.crc_valid


def test_corruption_accumulates(frame):
    worse = frame.corrupted(2).corrupted(3)
    assert worse.bit_flips == 5


def test_zero_flip_corruption_is_identity(frame):
    assert frame.corrupted(0) is frame


def test_delay(frame):
    late = frame.delayed(100.0)
    assert late.timing_error_us == pytest.approx(103.5)
    assert late.payload == frame.payload
