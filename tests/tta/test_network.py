"""Unit tests for the replicated bus, attachments and disturbance zones."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tta.frames import Frame
from repro.tta.network import Bus, DeliveryStatus, DisturbanceZone
from repro.tta.tdma import TdmaSchedule


def make_bus(channels=2, n=3, seed=0):
    bus = Bus(channels, np.random.default_rng(seed))
    for i in range(n):
        bus.attach(f"c{i}", (float(i), 0.0))
    return bus


def make_frame(sender="c0"):
    slot = TdmaSchedule(("c0", "c1", "c2"), 1000).slot_at(0)
    return Frame(sender=sender, slot=slot, send_time_us=0.0)


def test_healthy_broadcast_reaches_everyone():
    bus = make_bus()
    deliveries = bus.broadcast(make_frame(), now_us=0)
    assert set(deliveries) == {"c1", "c2"}
    assert all(d.status is DeliveryStatus.RECEIVED for d in deliveries.values())
    assert all(all(d.channels_ok) for d in deliveries.values())


def test_tx_connector_fault_on_one_channel_is_masked_but_visible():
    bus = make_bus()
    bus.attachment("c0").degrade_connector(0, 1.0, direction="tx")
    deliveries = bus.broadcast(make_frame(), now_us=0)
    for d in deliveries.values():
        assert d.status is DeliveryStatus.RECEIVED  # channel B masks
        assert d.channels_ok == (False, True)


def test_rx_connector_fault_affects_only_that_receiver():
    bus = make_bus()
    bus.attachment("c1").degrade_connector(1, 1.0, direction="rx")
    deliveries = bus.broadcast(make_frame(), now_us=0)
    assert deliveries["c1"].channels_ok == (True, False)
    assert deliveries["c2"].channels_ok == (True, True)


def test_both_channels_blocked_is_omission():
    bus = make_bus()
    att = bus.attachment("c0")
    att.degrade_connector(0, 1.0, direction="tx")
    att.degrade_connector(1, 1.0, direction="tx")
    deliveries = bus.broadcast(make_frame(), now_us=0)
    assert all(d.status is DeliveryStatus.OMITTED for d in deliveries.values())


def test_reseat_clears_degradation():
    bus = make_bus()
    att = bus.attachment("c0")
    att.degrade_connector(0, 1.0)
    att.reseat_connector()
    deliveries = bus.broadcast(make_frame(), now_us=0)
    assert all(all(d.channels_ok) for d in deliveries.values())


def test_channel_block_interval():
    bus = make_bus()
    bus.channel_state[0].blocked_until_us = 100
    deliveries = bus.broadcast(make_frame(), now_us=50)
    assert all(d.channels_ok == (False, True) for d in deliveries.values())
    deliveries = bus.broadcast(make_frame(), now_us=150)
    assert all(d.channels_ok == (True, True) for d in deliveries.values())


def test_emi_zone_corrupts_frames_of_covered_sender():
    bus = make_bus()
    bus.add_zone(
        DisturbanceZone(
            position=(0.0, 0.0), radius=0.5, start_us=0, end_us=1000
        )
    )
    deliveries = bus.broadcast(make_frame("c0"), now_us=10)
    assert all(
        d.status is DeliveryStatus.CORRUPTED for d in deliveries.values()
    )
    assert all(d.frame.bit_flips >= 1 for d in deliveries.values())


def test_emi_zone_corrupts_reception_of_covered_receiver():
    bus = make_bus()
    bus.add_zone(
        DisturbanceZone(
            position=(1.0, 0.0), radius=0.5, start_us=0, end_us=1000
        )
    )
    deliveries = bus.broadcast(make_frame("c0"), now_us=10)
    assert deliveries["c1"].status is DeliveryStatus.CORRUPTED
    assert deliveries["c2"].status is DeliveryStatus.RECEIVED


def test_emi_zone_inactive_outside_window():
    bus = make_bus()
    bus.add_zone(
        DisturbanceZone(position=(0.0, 0.0), radius=9.0, start_us=100, end_us=200)
    )
    deliveries = bus.broadcast(make_frame(), now_us=500)
    assert all(d.status is DeliveryStatus.RECEIVED for d in deliveries.values())


def test_prune_zones():
    bus = make_bus()
    bus.add_zone(DisturbanceZone((0, 0), 1.0, 0, 100))
    bus.add_zone(DisturbanceZone((0, 0), 1.0, 0, 1000))
    bus.prune_zones(now_us=500)
    assert len(bus.zones) == 1


def test_duplicate_attach_rejected():
    bus = make_bus()
    with pytest.raises(ConfigurationError):
        bus.attach("c0")


def test_unknown_attachment_rejected():
    bus = make_bus()
    with pytest.raises(ConfigurationError):
        bus.attachment("ghost")


def test_invalid_omission_prob_rejected():
    bus = make_bus()
    with pytest.raises(ConfigurationError):
        bus.attachment("c0").degrade_connector(0, 1.5)
    with pytest.raises(ConfigurationError):
        bus.attachment("c0").degrade_connector(0, 0.5, direction="sideways")


def test_single_channel_bus():
    bus = Bus(1, np.random.default_rng(0))
    bus.attach("a", (0, 0))
    bus.attach("b", (1, 0))
    bus.attachment("a").degrade_connector(0, 1.0, direction="tx")
    slot = TdmaSchedule(("a", "b"), 1000).slot_at(0)
    frame = Frame(sender="a", slot=slot, send_time_us=0.0)
    deliveries = bus.broadcast(frame, now_us=0)
    assert deliveries["b"].status is DeliveryStatus.OMITTED
