"""Unit tests for time/rate unit conversions."""

from __future__ import annotations

import pytest

from repro import units


def test_time_conversions_roundtrip():
    assert units.ms(1.5) == 1500
    assert units.seconds(2) == 2_000_000
    assert units.minutes(1) == 60_000_000
    assert units.hours(1) == 3_600_000_000
    assert units.to_ms(1500) == 1.5
    assert units.to_seconds(2_000_000) == 2.0
    assert units.to_hours(units.hours(3)) == 3.0


def test_fit_conversions():
    assert units.fit_to_per_hour(1e9) == pytest.approx(1.0)
    assert units.per_hour_to_fit(1.0) == pytest.approx(1e9)
    assert units.fit_to_per_us(1e9) == pytest.approx(1.0 / units.US_PER_HOUR)


def test_mtbf():
    # Paper: 100 FIT is about 1000 years.
    years = units.mtbf_hours(100.0) / units.HOURS_PER_YEAR
    assert 1000 == pytest.approx(years, rel=0.15)
    # Paper: 100,000 FIT is about 1 year.
    years = units.mtbf_hours(100_000.0) / units.HOURS_PER_YEAR
    assert 1.0 == pytest.approx(years, rel=0.15)
    with pytest.raises(ValueError):
        units.mtbf_hours(0.0)
