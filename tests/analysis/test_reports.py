"""Unit tests for report rendering."""

from __future__ import annotations

from repro.analysis.reports import fmt, render_series, render_table


def test_fmt_scalars():
    assert fmt(True) == "yes"
    assert fmt(False) == "no"
    assert fmt(0.0) == "0"
    assert fmt(3.14159) == "3.14"
    assert fmt(1.5e-7) == "1.500e-07"
    assert fmt(2.5e9) == "2.500e+09"
    assert fmt("text") == "text"
    assert fmt(12) == "12"


def test_render_table_alignment_and_title():
    out = render_table(
        ["name", "value"],
        [["alpha", 1.0], ["beta-long-name", 22.5]],
        title="Demo",
    )
    lines = out.splitlines()
    assert lines[0] == "Demo"
    widths = {len(l) for l in lines[1:]}
    assert len(widths) == 1  # all box lines equal width
    assert "alpha" in out and "beta-long-name" in out


def test_render_table_pads_short_rows():
    out = render_table(["a", "b", "c"], [["x"]])
    assert "x" in out


def test_render_series_linear_and_log():
    out = render_series([1, 2, 3], [1.0, 10.0, 100.0], "t", "h", title="curve")
    assert out.splitlines()[0] == "curve"
    assert "#" in out
    log_out = render_series([1, 2, 3], [1.0, 10.0, 100.0], log_y=True)
    assert "#" in log_out


def test_render_series_constant_values():
    out = render_series([1, 2], [5.0, 5.0])
    assert "5" in out
