"""Unit tests for scoring metrics."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    ConfusionMatrix,
    evaluate_recommendations,
    removal_justified,
    score_campaign,
)
from repro.core.classification import Verdict
from repro.core.fault_model import (
    FaultClass,
    FaultDescriptor,
    OriginPhase,
    Persistence,
    component_fru,
    job_fru,
)
from repro.core.maintenance import (
    MaintenanceAction,
    MaintenanceRecommendation,
)
from repro.errors import AnalysisError


def desc(fault_class, fru, fid="F1"):
    return FaultDescriptor(
        fid, fault_class, Persistence.TRANSIENT, OriginPhase.OPERATIONAL, fru, "m"
    )


def verd(fault_class, fru, confidence=0.9):
    return Verdict(fru, fault_class, confidence, 3, Persistence.TRANSIENT)


def rec(action, fru, fault_class=FaultClass.COMPONENT_INTERNAL):
    return MaintenanceRecommendation(
        fru=fru,
        fault_class=fault_class,
        action=action,
        confidence=1.0,
        removes_fru=action is MaintenanceAction.REPLACE_COMPONENT,
    )


# -- ConfusionMatrix ------------------------------------------------------------


def test_confusion_matrix_accuracy():
    m = ConfusionMatrix()
    m.add(FaultClass.COMPONENT_INTERNAL, FaultClass.COMPONENT_INTERNAL)
    m.add(FaultClass.COMPONENT_INTERNAL, FaultClass.COMPONENT_EXTERNAL)
    m.add(FaultClass.COMPONENT_EXTERNAL, None)
    assert m.total == 3
    assert m.correct == 1
    assert m.accuracy == pytest.approx(1 / 3)
    assert m.count(FaultClass.COMPONENT_EXTERNAL, None) == 1


def test_confusion_matrix_precision_recall():
    m = ConfusionMatrix()
    m.add(FaultClass.COMPONENT_INTERNAL, FaultClass.COMPONENT_INTERNAL)
    m.add(FaultClass.COMPONENT_INTERNAL, FaultClass.COMPONENT_INTERNAL)
    m.add(FaultClass.COMPONENT_EXTERNAL, FaultClass.COMPONENT_INTERNAL)
    assert m.recall(FaultClass.COMPONENT_INTERNAL) == pytest.approx(1.0)
    assert m.precision(FaultClass.COMPONENT_INTERNAL) == pytest.approx(2 / 3)
    assert m.recall(FaultClass.COMPONENT_EXTERNAL) == 0.0


def test_confusion_matrix_rows_render():
    m = ConfusionMatrix()
    m.add(FaultClass.COMPONENT_INTERNAL, None)
    rows = m.rows()
    assert rows[0][0] == "component-internal"
    labels = m.labels()
    assert "missed" in labels


# -- score_campaign --------------------------------------------------------------


def test_score_campaign_exact_match():
    truth = [desc(FaultClass.COMPONENT_INTERNAL, component_fru("c1"))]
    verdicts = [verd(FaultClass.COMPONENT_INTERNAL, component_fru("c1"))]
    score = score_campaign(truth, verdicts)
    assert score.accuracy == 1.0
    assert score.matched == 1
    assert score.missed == 0
    assert score.spurious_verdicts == 0


def test_score_campaign_missed_and_spurious():
    truth = [desc(FaultClass.COMPONENT_INTERNAL, component_fru("c1"))]
    verdicts = [verd(FaultClass.COMPONENT_EXTERNAL, component_fru("c9"))]
    score = score_campaign(truth, verdicts)
    assert score.missed == 1
    assert score.spurious_verdicts == 1


def test_score_campaign_highest_confidence_verdict_wins():
    truth = [desc(FaultClass.COMPONENT_INTERNAL, component_fru("c1"))]
    verdicts = [
        verd(FaultClass.COMPONENT_EXTERNAL, component_fru("c1"), 0.4),
        verd(FaultClass.COMPONENT_INTERNAL, component_fru("c1"), 0.9),
    ]
    assert score_campaign(truth, verdicts).accuracy == 1.0


def test_score_campaign_job_fault_scored_on_job_fru():
    truth = [desc(FaultClass.JOB_INHERENT_SOFTWARE, job_fru("A1"))]
    verdicts = [verd(FaultClass.JOB_INHERENT_SOFTWARE, job_fru("A1"))]
    assert score_campaign(truth, verdicts).accuracy == 1.0


def test_score_campaign_job_fault_falls_back_to_host_component():
    """A software fault misdiagnosed as a hardware fault of the hosting
    component shows up as a confusion, not a miss."""
    truth = [desc(FaultClass.JOB_INHERENT_SOFTWARE, job_fru("A1"))]
    verdicts = [verd(FaultClass.COMPONENT_INTERNAL, component_fru("comp1"))]
    score = score_campaign(truth, verdicts, job_locations={"A1": "comp1"})
    assert score.matched == 1
    assert score.accuracy == 0.0
    assert score.spurious_verdicts == 0


def test_score_campaign_empty_truth_rejected():
    with pytest.raises(AnalysisError):
        score_campaign([], [])


# -- removal_justified / evaluate_recommendations ----------------------------------


def test_replacement_justified_only_for_true_internal():
    truth = [desc(FaultClass.COMPONENT_INTERNAL, component_fru("c1"))]
    good = rec(MaintenanceAction.REPLACE_COMPONENT, component_fru("c1"))
    bad = rec(MaintenanceAction.REPLACE_COMPONENT, component_fru("c2"))
    assert removal_justified(good, truth)
    assert not removal_justified(bad, truth)


def test_replacement_for_external_fault_is_nff():
    truth = [desc(FaultClass.COMPONENT_EXTERNAL, component_fru("c1"))]
    replace = rec(MaintenanceAction.REPLACE_COMPONENT, component_fru("c1"))
    assert not removal_justified(replace, truth)


def test_connector_inspection_justified_for_borderline():
    truth = [desc(FaultClass.COMPONENT_BORDERLINE, component_fru("c1"))]
    inspect = rec(
        MaintenanceAction.INSPECT_CONNECTOR,
        component_fru("c1"),
        FaultClass.COMPONENT_BORDERLINE,
    )
    assert removal_justified(inspect, truth)


def test_transducer_inspection_justified_for_sensor_fault():
    truth = [desc(FaultClass.JOB_INHERENT_TRANSDUCER, job_fru("C1"))]
    inspect = rec(
        MaintenanceAction.INSPECT_TRANSDUCER,
        job_fru("C1"),
        FaultClass.JOB_INHERENT_TRANSDUCER,
    )
    assert removal_justified(inspect, truth)


def test_non_removal_actions_vacuously_justified():
    truth = [desc(FaultClass.COMPONENT_EXTERNAL, component_fru("c1"))]
    no_action = rec(
        MaintenanceAction.NO_ACTION, component_fru("c1"), FaultClass.COMPONENT_EXTERNAL
    )
    assert removal_justified(no_action, truth)


def test_evaluate_recommendations_fills_cost_model():
    truth = [
        desc(FaultClass.COMPONENT_INTERNAL, component_fru("c1"), "F1"),
        desc(FaultClass.COMPONENT_EXTERNAL, component_fru("c2"), "F2"),
    ]
    recs = [
        rec(MaintenanceAction.REPLACE_COMPONENT, component_fru("c1")),
        rec(MaintenanceAction.REPLACE_COMPONENT, component_fru("c2")),
    ]
    model = evaluate_recommendations(recs, truth)
    assert model.removals == 2
    assert model.nff_removals == 1
    assert model.nff_ratio == pytest.approx(0.5)
