"""End-to-end diagnosed-fleet simulation tests (kept small for CI)."""

from __future__ import annotations

import pytest

from repro.analysis.fleet_sim import CANDIDATE_JOBS, simulate_diagnosed_fleet
from repro.core.fleet import analyse_fleet
from repro.errors import AnalysisError
from repro.units import seconds


def test_diagnosed_fleet_identifies_hot_job():
    result = simulate_diagnosed_fleet(
        8, seed=3, fault_probability=0.75, drive_duration_us=seconds(2)
    )
    assert result.vehicles_simulated == 8
    assert result.vehicles_with_fault >= 3
    # the on-board diagnosis catches (nearly) every planted Heisenbug
    assert result.detection_rate >= 0.8
    analysis = analyse_fleet(result.report)
    # the OEM-side correlation identifies a subset containing the truth
    assert set(result.report.hot_types) <= set(analysis.identified_hot)


def test_fault_free_fleet_reports_nothing():
    result = simulate_diagnosed_fleet(
        3, seed=4, fault_probability=0.0, drive_duration_us=seconds(1)
    )
    assert result.vehicles_with_fault == 0
    assert result.report.totals().sum() == 0
    with pytest.raises(AnalysisError):
        analyse_fleet(result.report)


def test_candidate_jobs_are_non_safety_critical():
    from repro.presets import figure10_cluster

    parts = figure10_cluster(seed=0)
    for job_name in CANDIDATE_JOBS:
        assert not parts.cluster.job(job_name).spec.safety_critical


def test_validation():
    with pytest.raises(AnalysisError):
        simulate_diagnosed_fleet(0)
    with pytest.raises(AnalysisError):
        simulate_diagnosed_fleet(1, fault_probability=1.5)
