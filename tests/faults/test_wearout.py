"""Unit tests for wearout damage accumulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults.wearout import DamageAccumulator, wearout_fit_profile


def test_accumulation_is_linear_in_hours_and_stress():
    acc = DamageAccumulator(endurance=1.0, base_stress=0.01)
    acc.accumulate(10.0)
    assert acc.normalised_damage == pytest.approx(0.1)
    acc.accumulate(10.0, stress_multiplier=2.0)
    assert acc.normalised_damage == pytest.approx(0.3)
    assert not acc.worn_out


def test_worn_out_at_endurance():
    acc = DamageAccumulator(endurance=1.0, base_stress=0.1)
    acc.accumulate(10.0)
    assert acc.worn_out


def test_rate_multiplier_grows_convexly():
    acc = DamageAccumulator(endurance=1.0, base_stress=1.0)
    assert acc.rate_multiplier() == pytest.approx(1.0)
    acc.accumulate(0.5)
    half = acc.rate_multiplier()
    acc.accumulate(0.5)
    full = acc.rate_multiplier()
    assert 1.0 < half < full
    assert full == pytest.approx(10.0)


def test_validation():
    with pytest.raises(ConfigurationError):
        DamageAccumulator(endurance=0.0)
    acc = DamageAccumulator()
    with pytest.raises(ConfigurationError):
        acc.accumulate(-1.0)
    with pytest.raises(ConfigurationError):
        acc.accumulate(1.0, stress_multiplier=-1.0)
    with pytest.raises(ConfigurationError):
        acc.rate_multiplier(exponent=0.0)


def test_fit_profile_shape():
    profile = wearout_fit_profile(100.0, onset_us=1000, full_us=2000, multiplier=10.0)
    t = np.array([0, 500, 1000, 1500, 2000, 3000])
    rates = profile(t)
    assert rates[0] == rates[1] == rates[2] == pytest.approx(100.0)
    assert rates[3] == pytest.approx(100.0 * (1 + 9 * 0.25))
    assert rates[4] == rates[5] == pytest.approx(1000.0)
    # monotone non-decreasing
    assert np.all(np.diff(rates) >= -1e-12)


def test_fit_profile_validation():
    with pytest.raises(ConfigurationError):
        wearout_fit_profile(0.0, 0, 1)
    with pytest.raises(ConfigurationError):
        wearout_fit_profile(1.0, 10, 10)
    with pytest.raises(ConfigurationError):
        wearout_fit_profile(1.0, 0, 10, multiplier=0.5)
