"""Tests for the quartz-degradation and power-brownout mechanisms."""

from __future__ import annotations

import pytest

from repro.core.fault_model import FaultClass, Persistence
from repro.diagnosis.diag_das import DiagnosticService
from repro.errors import FaultInjectionError
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster, small_cluster
from repro.units import ms, seconds


def test_quartz_degradation_grows_timing_offset():
    cluster = small_cluster(4, seed=91)
    injector = FaultInjector(cluster)
    d = injector.inject_quartz_degradation(
        "c1", ms(100), drift_step_us=10.0, step_period_us=ms(100)
    )
    assert d.fault_class is FaultClass.COMPONENT_INTERNAL
    assert d.persistence is Persistence.PERMANENT
    cluster.run(ms(550))
    offset_early = cluster.components["c1"].hardware.timing_offset_us
    cluster.run(ms(500))
    offset_late = cluster.components["c1"].hardware.timing_offset_us
    assert 0 < offset_early < offset_late


def test_quartz_degradation_capped():
    cluster = small_cluster(4, seed=92)
    injector = FaultInjector(cluster)
    injector.inject_quartz_degradation(
        "c1", ms(0), drift_step_us=50.0, step_period_us=ms(10), max_offset_us=120.0
    )
    cluster.run(seconds(1))
    assert cluster.components["c1"].hardware.timing_offset_us <= 170.0


def test_quartz_degradation_classified_internal():
    parts = figure10_cluster(seed=93)
    service = DiagnosticService(parts.cluster, collector="comp5")
    FaultInjector(parts.cluster).inject_quartz_degradation("comp1", ms(200))
    parts.cluster.run(seconds(4))
    verdicts = {str(v.fru): v for v in service.verdicts()}
    assert (
        verdicts["component:comp1"].fault_class
        is FaultClass.COMPONENT_INTERNAL
    )


def test_quartz_validation():
    cluster = small_cluster(3, seed=94)
    injector = FaultInjector(cluster)
    with pytest.raises(FaultInjectionError):
        injector.inject_quartz_degradation("c1", 0, drift_step_us=0.0)


def test_brownout_mixes_corruption_and_outages():
    cluster = small_cluster(4, seed=95)
    injector = FaultInjector(cluster)
    injector.inject_power_brownout(
        "c1", ms(100), duration_us=ms(600), outage_us=ms(10)
    )
    cluster.run(seconds(1))
    assert cluster.trace.count("delivery.corrupted") > 0
    assert cluster.trace.count("frame.silent") > 0
    # cleared after the window
    assert cluster.components["c1"].hardware.corrupt_tx_bits == 0


def test_brownout_confined_to_one_component():
    cluster = small_cluster(4, seed=96)
    injector = FaultInjector(cluster)
    injector.inject_power_brownout("c1", ms(100), duration_us=ms(600))
    cluster.run(seconds(1))
    corrupted = cluster.trace.records("delivery.corrupted")
    assert {r.data["sender"] for r in corrupted} == {"c1"}


def test_brownout_classified_internal():
    parts = figure10_cluster(seed=97)
    service = DiagnosticService(parts.cluster, collector="comp5")
    FaultInjector(parts.cluster).inject_power_brownout(
        "comp2", ms(200), duration_us=seconds(1)
    )
    parts.cluster.run(seconds(3))
    verdicts = {str(v.fru): v for v in service.verdicts()}
    assert (
        verdicts["component:comp2"].fault_class
        is FaultClass.COMPONENT_INTERNAL
    )


def test_brownout_validation():
    cluster = small_cluster(3, seed=98)
    injector = FaultInjector(cluster)
    with pytest.raises(FaultInjectionError):
        injector.inject_power_brownout("c1", 0, duration_us=0)


def test_stress_driven_wearout_rates_follow_harshness():
    """Harsher stress profiles age the unit faster and produce more
    transient episodes over the same horizon."""
    from repro.faults.environment import BENIGN, ROUGH_ROAD

    counts = {}
    for label, profile in (("benign", BENIGN), ("rough", ROUGH_ROAD)):
        total = 0
        for seed in range(4):
            cluster = small_cluster(4, seed=200 + seed)
            injector = FaultInjector(cluster)
            d = injector.inject_stress_driven_wearout(
                "c1",
                profile,
                horizon_us=seconds(10),
                base_fit=5e11,
                base_stress_per_hour=110.0,  # accelerated-life scaling
            )
            assert d.mechanism == "stress-wearout"
            total += int(d.activation_us == 0)  # descriptor sanity
            cluster.run(seconds(10))
            total += cluster.trace.count("frame.silent")
        counts[label] = total
    assert counts["rough"] > counts["benign"]


def test_stress_driven_wearout_validation():
    from repro.faults.environment import BENIGN

    cluster = small_cluster(3, seed=210)
    injector = FaultInjector(cluster)
    with pytest.raises(FaultInjectionError):
        injector.inject_stress_driven_wearout("c1", BENIGN, horizon_us=0)
