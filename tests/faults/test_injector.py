"""Unit tests for the fault injector: every mechanism produces its
documented substrate-level manifestation and a correct ledger entry."""

from __future__ import annotations

import pytest

from repro.core.fault_model import FaultClass, FruKind, Persistence
from repro.errors import FaultInjectionError
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster, small_cluster
from repro.units import ms, seconds


@pytest.fixture
def cluster():
    return small_cluster(n_components=4, seed=21)


@pytest.fixture
def injector(cluster):
    return FaultInjector(cluster)


def test_ledger_ids_unique_and_registered(cluster, injector):
    d1 = injector.inject_transient_internal("c1", ms(10))
    d2 = injector.inject_seu("c2", ms(20))
    assert d1.fault_id != d2.fault_id
    assert set(injector.ground_truth()) == {d1.fault_id, d2.fault_id}
    assert cluster.trace.count("fault.injected") == 2


def test_transient_internal_causes_bounded_outage(cluster, injector):
    injector.inject_transient_internal("c1", ms(50), duration_us=ms(20))
    cluster.run(ms(100))
    silent = cluster.trace.records("frame.silent", source="c1")
    # 20 ms outage, c1's slot comes once per 4 ms round: ~5 missed slots.
    assert 3 <= len(silent) <= 7
    assert cluster.components["c1"].operational(cluster.now)


def test_permanent_silent_never_recovers(cluster, injector):
    d = injector.inject_permanent_internal("c1", ms(10), mode="silent")
    cluster.run(ms(100))
    assert not cluster.components["c1"].operational(cluster.now)
    assert d.persistence is Persistence.PERMANENT
    assert d.fault_class is FaultClass.COMPONENT_INTERNAL


def test_permanent_babbling_blocked_by_guardians(cluster, injector):
    injector.inject_permanent_internal("c1", ms(10), mode="babbling")
    cluster.run(ms(100))
    assert cluster.guardians["c1"].blocked_count > 0
    # the bus stays clean: no omissions at other receivers
    assert cluster.trace.count("delivery.omitted") == 0


def test_permanent_corrupt_invalidates_frames(cluster, injector):
    injector.inject_permanent_internal("c1", ms(10), mode="corrupt")
    cluster.run(ms(50))
    assert cluster.trace.count("delivery.corrupted") > 0


def test_permanent_timing_shifts_sends(cluster, injector):
    injector.inject_permanent_internal(
        "c1", ms(10), mode="timing", timing_offset_us=60.0
    )
    cluster.run(ms(50))
    # send instants off by 60us but within guardian tolerance: no blocks
    assert cluster.guardians["c1"].blocked_count == 0


def test_unknown_permanent_mode_rejected(injector):
    with pytest.raises(FaultInjectionError):
        injector.inject_permanent_internal("c1", 0, mode="meltdown")


def test_seu_corrupts_about_one_round(cluster, injector):
    injector.inject_seu("c1", ms(20))
    cluster.run(ms(100))
    corrupted = cluster.trace.records("delivery.corrupted")
    senders = {r.data["sender"] for r in corrupted}
    assert senders == {"c1"}
    assert 1 <= len(corrupted) <= 2 * (len(cluster.components) - 1)


def test_emi_burst_affects_zone_only(cluster, injector):
    d = injector.inject_emi_burst(
        ms(20), center=(0.5, 0.0), radius=0.6, duration_us=ms(10)
    )
    cluster.run(ms(100))
    assert d.fault_class is FaultClass.COMPONENT_EXTERNAL
    corrupted = cluster.trace.records("delivery.corrupted")
    assert corrupted, "EMI burst should corrupt frames"
    # senders c0/c1 are inside the zone; c3 well outside it can only be
    # hit as a *receiver* if it were in the zone (it is not).
    senders = {r.data["sender"] for r in corrupted}
    assert senders <= {"c0", "c1", "c2", "c3"}


def test_emi_burst_requires_coverage(cluster, injector):
    with pytest.raises(FaultInjectionError):
        injector.inject_emi_burst(0, center=(99.0, 99.0), radius=0.1)
    with pytest.raises(FaultInjectionError):
        injector.inject_emi_burst(0, duration_us=0)


def test_connector_fault_degrades_one_channel(cluster, injector):
    d = injector.inject_connector_fault(
        "c2", channel=1, omission_prob=1.0, at_us=ms(10)
    )
    cluster.run(ms(50))
    assert d.fault_class is FaultClass.COMPONENT_BORDERLINE
    att = cluster.bus.attachment("c2")
    assert att.tx[1].omission_prob == 1.0
    assert att.rx[1].omission_prob == 1.0
    assert att.tx[0].omission_prob == 0.0
    # replication masks: no omissions at frame level
    assert cluster.trace.count("delivery.omitted") == 0


def test_wiring_fault_hits_whole_channel(cluster, injector):
    injector.inject_wiring_fault(0, omission_prob=1.0, at_us=ms(10))
    cluster.run(ms(50))
    assert cluster.bus.channel_state[0].omission_prob == 1.0
    with pytest.raises(FaultInjectionError):
        injector.inject_wiring_fault(5)


def test_recurring_transients_min_occurrences(cluster, injector):
    d = injector.inject_recurring_transients(
        "c1", ms(10), seconds(1), fit=1.0, min_occurrences=5
    )
    cluster.run(seconds(1))
    assert cluster.trace.count("frame.silent") >= 5
    assert d.fault_class is FaultClass.COMPONENT_INTERNAL


def test_wearout_occurrence_frequency_rises(cluster, injector):
    injector.inject_wearout(
        "c1",
        onset_us=ms(10),
        full_us=seconds(4),
        horizon_us=seconds(5),
        base_fit=2e12,
        multiplier=10.0,
        duration_us=ms(4),
    )
    cluster.run(seconds(5))
    silent = [r.time for r in cluster.trace.records("frame.silent")]
    assert len(silent) >= 6
    mid = (silent[0] + silent[-1]) / 2
    early = sum(1 for t in silent if t <= mid)
    late = len(silent) - early
    assert late > early


def test_job_crash_transient_and_permanent(cluster, injector):
    injector.inject_job_crash("p0", ms(10), duration_us=ms(20))
    cluster.run(ms(100))
    assert cluster.job("p0").active(cluster.now)
    d = injector.inject_job_crash("p0", cluster.now + ms(1))
    cluster.run(ms(20))
    assert not cluster.job("p0").active(cluster.now)
    assert d.persistence is Persistence.PERMANENT


def test_bohrbug_forces_out_of_spec_values(cluster, injector):
    injector.inject_software_bohrbug("p0", ms(10))
    cluster.run(ms(50))
    consumer = cluster.job("k1")
    values = consumer.state.get("consumed", []) + [
        m.value for m in consumer.port("in").drain()
    ]
    spec = cluster.job("p0").spec.port("out").value_spec
    assert any(not spec.conforms(v) for v in values)


def test_heisenbug_manifest_rate(cluster, injector):
    injector.inject_software_heisenbug("p0", ms(0), manifest_prob=0.5)
    cluster.run(ms(400))
    spec = cluster.job("p0").spec.port("out").value_spec
    consumed = cluster.job("k1").state.get("consumed", [])
    port = cluster.job("k1").port("in")
    values = consumed + [m.value for m in port.drain()]
    bad = sum(1 for v in values if not spec.conforms(v))
    assert 0 < bad < len(values)
    with pytest.raises(FaultInjectionError):
        injector.inject_software_heisenbug("p0", 0, manifest_prob=0.0)


def test_sensor_fault_modes():
    parts = figure10_cluster(seed=22)
    cluster = parts.cluster
    injector = FaultInjector(cluster)
    injector.inject_sensor_fault("C1", ms(10), mode="stuck", stuck_value=5.0)
    cluster.run(ms(50))
    assert cluster.job("C1").read_sensors()["wheel_speed"] == 5.0
    with pytest.raises(FaultInjectionError):
        injector.inject_sensor_fault("C1", 0, mode="explode")


def test_sensor_drift_grows_over_time():
    parts = figure10_cluster(seed=23)
    cluster = parts.cluster
    injector = FaultInjector(cluster)
    injector.inject_sensor_fault("C1", 0, mode="drift", drift_per_s=10.0)
    cluster.run(seconds(2))
    raw = cluster.job("C1").sensors["wheel_speed"]
    seen = cluster.job("C1").read_sensors()["wheel_speed"]
    assert seen - raw == pytest.approx(20.0, abs=1.0)


def test_queue_config_fault_causes_overflow():
    parts = figure10_cluster(seed=24)
    cluster = parts.cluster
    injector = FaultInjector(cluster)
    injector.inject_queue_config_fault("A3", "in", capacity=1, at_us=ms(10))
    cluster.run(ms(200))
    assert cluster.job("A3").port("in").overflow_count > 0
    assert cluster.trace.count("port.overflow") > 0


def test_vn_budget_fault_causes_tx_overflow():
    parts = figure10_cluster(seed=25)
    cluster = parts.cluster
    injector = FaultInjector(cluster)
    injector.inject_vn_budget_config_fault("vn-C", slot_budget=1, at_us=ms(10))
    cluster.run(ms(200))
    assert cluster.vns["vn-C"].tx_overflows > 0
    with pytest.raises(FaultInjectionError):
        injector.inject_vn_budget_config_fault("vn-ghost")


def test_unknown_targets_rejected(injector):
    with pytest.raises(FaultInjectionError):
        injector.inject_transient_internal("ghost", 0)
    with pytest.raises(FaultInjectionError):
        injector.inject_software_bohrbug("ghost", 0)


def test_fru_kinds_in_ledger(cluster, injector):
    hw = injector.inject_transient_internal("c1", 0)
    sw = injector.inject_software_bohrbug("p0", 0)
    assert hw.fru.kind is FruKind.COMPONENT
    assert sw.fru.kind is FruKind.JOB
