"""Unit tests for environmental stress profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults.environment import BENIGN, HIGHWAY, ROUGH_ROAD, StressProfile
from repro.units import seconds


def test_benign_profile_is_flat_baseline():
    t = np.linspace(0, 1e7, 10)
    assert np.allclose(BENIGN.at(t), 1.0)


def test_vibration_adds_constant_stress():
    profile = StressProfile(vibration=2.0)
    assert float(profile.at(0)) == pytest.approx(3.0)


def test_thermal_cycle_oscillates():
    profile = StressProfile(
        thermal_cycle_amplitude=2.0, thermal_cycle_period_us=seconds(10)
    )
    at_start = float(profile.at(0))
    at_half = float(profile.at(seconds(5)))
    assert at_start == pytest.approx(1.0)
    assert at_half == pytest.approx(3.0)


def test_shock_window():
    profile = StressProfile(
        shock_times_us=(seconds(1),), shock_magnitude=5.0, shock_window_us=seconds(1)
    )
    assert float(profile.at(seconds(0.5))) == pytest.approx(1.0)
    assert float(profile.at(seconds(1.5))) == pytest.approx(6.0)
    assert float(profile.at(seconds(2.5))) == pytest.approx(1.0)


def test_mean_over():
    profile = StressProfile(vibration=1.0)
    assert profile.mean_over(0, seconds(1)) == pytest.approx(2.0)
    with pytest.raises(ConfigurationError):
        profile.mean_over(10, 10)


def test_presets_ordered_by_harshness():
    t = np.linspace(0, seconds(100), 50)
    assert HIGHWAY.at(t).mean() > BENIGN.at(t).mean()
    assert ROUGH_ROAD.at(t).mean() > HIGHWAY.at(t).mean()


def test_validation():
    with pytest.raises(ConfigurationError):
        StressProfile(baseline=0.0)
    with pytest.raises(ConfigurationError):
        StressProfile(vibration=-1.0)
    with pytest.raises(ConfigurationError):
        StressProfile(thermal_cycle_period_us=0)
