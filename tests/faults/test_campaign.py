"""Tests for the stochastic campaign generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diagnosis.diag_das import DiagnosticService
from repro.faults.campaign import DEFAULT_MIX, RandomCampaign
from repro.faults.injector import FaultInjector
from repro.presets import figure10_cluster
from repro.units import seconds


def make_campaign(seed=1, expected=4.0, **kwargs):
    parts = figure10_cluster(seed=seed)
    injector = FaultInjector(parts.cluster)
    campaign = RandomCampaign(
        injector,
        expected_faults=expected,
        horizon_us=seconds(8),
        sensor_jobs=("C1",),
        software_jobs=("A1", "A2", "B1", "C2"),
        config_ports=(("A3", "in"),),
        **kwargs,
    )
    return parts, injector, campaign


def test_default_mix_is_a_distribution():
    assert pytest.approx(sum(DEFAULT_MIX.values())) == 1.0
    assert all(w > 0 for w in DEFAULT_MIX.values())


def test_plan_matches_ledger():
    parts, injector, campaign = make_campaign(seed=2)
    plan = campaign.run(np.random.default_rng(2))
    assert len(plan.events) == len(plan.descriptors)
    assert list(plan.descriptors) == injector.injected


def test_activations_within_window():
    parts, injector, campaign = make_campaign(seed=3, expected=6.0)
    plan = campaign.run(np.random.default_rng(3))
    for _mech, _target, at_us in plan.events:
        assert 0.05 * campaign.horizon_us <= at_us <= 0.8 * campaign.horizon_us


def test_no_component_fru_collisions():
    """Internal/borderline mechanisms never share a target component.

    External mechanisms (EMI) are excluded: their descriptor names one
    representative victim of a regional disturbance, which may overlap —
    scoring handles externals by class, not by FRU.
    """
    from repro.core.fault_model import FaultClass

    parts, injector, campaign = make_campaign(seed=4, expected=10.0)
    plan = campaign.run(np.random.default_rng(4))
    component_targets = [
        d.fru.name
        for d in plan.descriptors
        if d.fru.kind.value == "component"
        and not d.fru.name.startswith("loom-")
        and d.fault_class is not FaultClass.COMPONENT_EXTERNAL
    ]
    assert len(component_targets) == len(set(component_targets))


def test_at_most_one_emi_and_one_wiring():
    parts, injector, campaign = make_campaign(seed=5, expected=20.0)
    plan = campaign.run(np.random.default_rng(5))
    mechanisms = [m for m, _t, _a in plan.events]
    assert mechanisms.count("emi-burst") <= 1
    assert mechanisms.count("wiring") <= 1


def test_reproducible():
    _, _, campaign_a = make_campaign(seed=6)
    plan_a = campaign_a.run(np.random.default_rng(6))
    _, _, campaign_b = make_campaign(seed=6)
    plan_b = campaign_b.run(np.random.default_rng(6))
    assert plan_a.events == plan_b.events


def test_campaign_runs_and_is_diagnosable():
    parts, injector, campaign = make_campaign(seed=7)
    service = DiagnosticService(parts.cluster, collector="comp5")
    plan = campaign.run(np.random.default_rng(7))
    parts.cluster.run(seconds(8))
    if plan.descriptors:
        assert service.detection.symptoms_emitted > 0
