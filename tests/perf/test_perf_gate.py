"""Performance-regression gate against the committed baselines.

Compares the kernel hot paths against ``benchmarks/baselines.json`` and
fails on a regression beyond the tolerance (default 20 %).  Wall-clock
measurements are only meaningful on the runner class the baselines were
recorded on, so the whole module SKIPs unless ``REPRO_PERF_CI=1`` — CI
sets it; locally run::

    REPRO_PERF_CI=1 PYTHONPATH=src python -m pytest tests/perf -q -s

Every test writes its measurement into ``benchmarks/out/perf_gate.json``
(via the bench emit helper), which CI uploads as an artifact; after an
*intentional* perf change, copy the measured values into
``baselines.json`` in the same commit.

Knobs:

* ``REPRO_PERF_CI=1`` — enable the gate (off by default everywhere else).
* ``REPRO_PERF_TOLERANCE`` — allowed fractional regression (default from
  ``baselines.json``, currently 0.2).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.sim.engine import Simulator

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_PERF_CI") != "1",
    reason=(
        "perf gate compares wall-clock against baselines recorded on the "
        "CI runner class; set REPRO_PERF_CI=1 to run it on this machine"
    ),
)

_BASELINES_PATH = Path(__file__).parent.parent.parent / "benchmarks" / "baselines.json"


def _baselines() -> dict:
    return json.loads(_BASELINES_PATH.read_text(encoding="utf-8"))


def _tolerance(baselines: dict) -> float:
    return float(
        os.environ.get(
            "REPRO_PERF_TOLERANCE", baselines.get("tolerance_default", 0.2)
        )
    )


_RESULTS: dict[str, dict] = {}


def _record(name: str, measured: dict) -> None:
    """Accumulate gate measurements and emit the artifact incrementally."""
    from benchmarks._util import emit

    _RESULTS[name] = measured
    lines = ["perf gate measurements vs benchmarks/baselines.json"]
    for bench, result in sorted(_RESULTS.items()):
        lines.append(f"  {bench}: {result}")
    emit("perf_gate", "\n".join(lines), data=dict(_RESULTS))


def test_kernel_a10_single_replica_wall():
    from benchmarks.bench_kernel import _time_single_replica

    baselines = _baselines()
    base = baselines["benches"]["kernel_a10_single_replica"]
    tolerance = _tolerance(baselines)
    wall, events = _time_single_replica()
    limit = base["wall_s"] * (1.0 + tolerance)
    _record(
        "kernel_a10_single_replica",
        {
            "wall_s": round(wall, 4),
            "events": events,
            "baseline_wall_s": base["wall_s"],
            "limit_wall_s": round(limit, 4),
        },
    )
    assert events == base["events"], (
        f"event count diverged: {events} != {base['events']} — behaviour "
        "change, not a perf regression; fix equivalence first"
    )
    assert wall <= limit, (
        f"A10 single-replica wall {wall:.3f} s exceeds baseline "
        f"{base['wall_s']:.3f} s by more than {tolerance:.0%}"
    )


def _rate_one_shot(n: int) -> float:
    best = 0.0
    for _ in range(3):
        sim = Simulator()
        callback = lambda s: None  # noqa: E731
        for t in range(n):
            sim.schedule_at(t, callback)
        t0 = time.perf_counter()
        sim.run_until(n)
        best = max(best, n / (time.perf_counter() - t0))
    return best


def _rate_periodic(n: int) -> float:
    best = 0.0
    for _ in range(3):
        sim = Simulator()
        sim.schedule_periodic(1, lambda s: None)
        t0 = time.perf_counter()
        sim.run_until(n)
        best = max(best, n / (time.perf_counter() - t0))
    return best


def test_batch_backend_wall():
    """The batched backend must not regress — absolutely or vs scalar.

    Two gates from one measurement: the batched serial wall against the
    committed baseline, and against the scalar path measured in the same
    session (host-speed-independent overhead bound).  The event count is
    a pure function of (seed, spec, replicas), so a count mismatch is a
    behaviour change, not a perf regression.
    """
    from benchmarks.bench_batch import _time_backends

    baselines = _baselines()
    base = baselines["benches"]["batch_backend"]
    tolerance = _tolerance(baselines)
    scalar, batched = _time_backends(base["replicas"])
    wall = batched.metrics.wall_time_s
    scalar_wall = scalar.metrics.wall_time_s
    limit = base["wall_s"] * (1.0 + tolerance)
    _record(
        "batch_backend",
        {
            "wall_s": round(wall, 4),
            "scalar_wall_s": round(scalar_wall, 4),
            "events": batched.metrics.events_simulated,
            "baseline_wall_s": base["wall_s"],
            "limit_wall_s": round(limit, 4),
        },
    )
    assert batched.value == scalar.value, (
        "batched aggregate diverged from scalar — identity broken; "
        "fix the differential battery first"
    )
    assert batched.metrics.events_simulated == base["events"], (
        f"event count diverged: {batched.metrics.events_simulated} != "
        f"{base['events']} — behaviour change, not a perf regression"
    )
    assert wall <= limit, (
        f"batched serial wall {wall:.3f} s exceeds baseline "
        f"{base['wall_s']:.3f} s by more than {tolerance:.0%}"
    )
    assert wall <= scalar_wall * (1.0 + tolerance), (
        f"batched serial wall {wall:.3f} s is more than {tolerance:.0%} "
        f"over the scalar path ({scalar_wall:.3f} s) on this host"
    )


def test_store_write_overhead(tmp_path):
    """Columnar-store writes must stay inside the <10 % overhead budget.

    The gate is relative — the same campaign with and without the store
    write, measured in one session — so it is host-speed independent.
    The stored aggregates must also answer exactly what the in-memory
    reduce answers (the cheap end of the differential battery).
    """
    from benchmarks.bench_store import _time_store

    baselines = _baselines()
    base = baselines["benches"]["store_write"]
    plain, stored, nff, _confusion, query_s = _time_store(
        base["replicas"], tmp_path / "store"
    )
    wall_plain = plain.metrics.wall_time_s
    wall_store = stored.metrics.wall_time_s
    overhead = (wall_store - wall_plain) / wall_plain if wall_plain else 0.0
    _record(
        "store_write",
        {
            "wall_plain_s": round(wall_plain, 4),
            "wall_store_s": round(wall_store, 4),
            "query_s": round(query_s, 4),
            "overhead_ratio": round(overhead, 4),
            "max_overhead": base["max_overhead"],
        },
    )
    assert stored.value == plain.value, (
        "store write perturbed the campaign aggregate — identity broken; "
        "fix the store differential battery first"
    )
    assert nff["faults_injected"] == plain.value.faults_injected
    assert overhead <= base["max_overhead"], (
        f"store write overhead {overhead:.1%} exceeds the "
        f"{base['max_overhead']:.0%} budget "
        f"({wall_store:.3f} s vs {wall_plain:.3f} s)"
    )


@pytest.mark.parametrize(
    "bench, measure",
    [("kernel_dispatch", _rate_one_shot), ("kernel_periodic", _rate_periodic)],
)
def test_kernel_throughput(bench, measure):
    baselines = _baselines()
    base = baselines["benches"][bench]
    tolerance = _tolerance(baselines)
    rate = measure(base["events"])
    floor = base["events_per_s"] / (1.0 + tolerance)
    _record(
        bench,
        {
            "events_per_s": round(rate),
            "baseline_events_per_s": base["events_per_s"],
            "floor_events_per_s": round(floor),
        },
    )
    assert rate >= floor, (
        f"{bench} throughput {rate:,.0f} ev/s is more than {tolerance:.0%} "
        f"below the baseline {base['events_per_s']:,.0f} ev/s"
    )
